(** Noise channels over the simulation backends.

    The clean simulators check the extended circuit model's promises
    (assertive termination, §4.2.2) only on clean runs. This module
    deliberately breaks that idyll: configurable per-gate/per-wire noise
    channels — bit flip, phase flip, depolarizing, measurement readout
    error — applied during execution, every random choice drawn from a
    {!Quipper_math.Rng} stream derived from one master seed so that every
    noisy run replays exactly.

    Channel semantics, applied after each gate to every qubit wire the
    gate touched that is still live (see {!Quipper.Faultsite.exposed_wires}):
    - [bit_flip p]: X with probability p;
    - [phase_flip p]: Z with probability p;
    - [depolarizing p]: with probability p, one of X/Y/Z uniformly;
    - [readout p]: each measurement's recorded outcome flips with
      probability p (the collapse itself is faithful — only the classical
      record lies, as real readout errors do).

    Noisy execution is generic over a {!Backend.S}: the Pauli kicks are
    Clifford operations, so campaigns run on the stabilizer backend too
    where the circuit's own gates permit. The historical entry points
    ([run_circuit], [run_and_measure], [run_trials]) remain, fixed to the
    statevector backend, and behave bit-identically to before.

    Seed discipline: the backend's own measurement stream uses the given
    seed unchanged, so a configuration with all probabilities zero is
    {e bit-identical} to the plain backend run; noise decisions draw from
    the derived child stream [Rng.derive seed 1]. *)

open Quipper
module Sv = Statevector
module Rng = Quipper_math.Rng

type config = {
  bit_flip : float;
  phase_flip : float;
  depolarizing : float;
  readout : float;
}

let none = { bit_flip = 0.0; phase_flip = 0.0; depolarizing = 0.0; readout = 0.0 }
let bit_flip p = { none with bit_flip = p }
let phase_flip p = { none with phase_flip = p }
let depolarizing p = { none with depolarizing = p }
let readout p = { none with readout = p }

let is_noiseless c =
  c.bit_flip = 0.0 && c.phase_flip = 0.0 && c.depolarizing = 0.0 && c.readout = 0.0

let pp_config ppf c =
  Fmt.pf ppf "{bit_flip=%g; phase_flip=%g; depolarizing=%g; readout=%g}" c.bit_flip
    c.phase_flip c.depolarizing c.readout

(* ------------------------------------------------------------------ *)
(* Noisy execution, generic over the backend                           *)

let pauli (type s) (module B : Backend.S with type state = s) (st : s) name w =
  B.apply_gate st
    (Gate.Gate { name; inv = false; targets = [ w ]; controls = [] })

(* One noise "kick" on wire [w]: each enabled channel fires
   independently. Zero-probability channels draw nothing, keeping the
   stream (and hence any enabled channel's decisions) independent of
   which other channels are configured off. *)
let kick (type s) (module B : Backend.S with type state = s) rng cfg (st : s) w =
  if cfg.bit_flip > 0.0 && Rng.float rng < cfg.bit_flip then pauli (module B) st "X" w;
  if cfg.phase_flip > 0.0 && Rng.float rng < cfg.phase_flip then pauli (module B) st "Z" w;
  if cfg.depolarizing > 0.0 && Rng.float rng < cfg.depolarizing then
    pauli (module B) st (match Rng.int rng 3 with 0 -> "X" | 1 -> "Y" | _ -> "Z") w

let flip_readout (type s) (module B : Backend.S with type state = s) rng cfg (st : s) w =
  if cfg.readout > 0.0 && Rng.float rng < cfg.readout then
    B.set_bit st w (not (B.read_bit st w))

let step (type s) (module B : Backend.S with type state = s) rng cfg (st : s)
    (g : Gate.t) =
  match g with
  | Gate.Measure { wire } ->
      B.apply_gate st g;
      flip_readout (module B) rng cfg st wire
  | g ->
      B.apply_gate st g;
      List.iter (kick (module B) rng cfg st) (Faultsite.exposed_wires g)

(** Run the inlined [flat] circuit noisily; returns the state and the
    noise stream (still needed for readout errors on final measurements). *)
let exec_on (type s) (module B : Backend.S with type state = s) ~seed cfg
    (flat : Circuit.t) (inputs : bool list) : s * Rng.t =
  let st = B.create ~seed () in
  let rng = Rng.create (Rng.derive seed 1) in
  (if List.length inputs <> List.length flat.Circuit.inputs then
     Errors.raise_ (Shape_mismatch "noisy run: input arity"));
  List.iter2
    (fun (e : Wire.endpoint) v ->
      B.apply_gate st (Gate.Init { ty = e.Wire.ty; value = v; wire = e.Wire.wire }))
    flat.Circuit.inputs inputs;
  Array.iter (step (module B) rng cfg st) flat.Circuit.gates;
  (st, rng)

let run_circuit_on (type s) (module B : Backend.S with type state = s) ?(seed = 1)
    cfg (b : Circuit.b) (inputs : bool list) : s =
  fst (exec_on (module B) ~seed cfg (Circuit.inline b) inputs)

let measure_outputs (type s) (module B : Backend.S with type state = s) rng cfg
    (st : s) (flat : Circuit.t) : bool list =
  List.map
    (fun (e : Wire.endpoint) ->
      match e.Wire.ty with
      | Wire.Q ->
          let v = B.measure st e.Wire.wire in
          if cfg.readout > 0.0 && Rng.float rng < cfg.readout then not v else v
      | Wire.C -> B.read_bit st e.Wire.wire)
    flat.Circuit.outputs

let run_and_measure_on (module B : Backend.S) ?(seed = 1) cfg (b : Circuit.b)
    (inputs : bool list) : bool list =
  let flat = Circuit.inline b in
  let st, rng = exec_on (module B) ~seed cfg flat inputs in
  measure_outputs (module B) rng cfg st flat

(* The historical statevector-fixed entry points. *)

let run_circuit ?(seed = 1) cfg (b : Circuit.b) (inputs : bool list) : Sv.state =
  run_circuit_on (module Backend.Statevector) ~seed cfg b inputs

let run_and_measure ?(seed = 1) cfg (b : Circuit.b) (inputs : bool list) : bool list =
  run_and_measure_on (module Backend.Statevector) ~seed cfg b inputs

(* ------------------------------------------------------------------ *)
(* Trial-based resilient running                                       *)

let channels_of cfg : Frame.channels =
  {
    Frame.bit_flip = cfg.bit_flip;
    phase_flip = cfg.phase_flip;
    depolarizing = cfg.depolarizing;
    readout = cfg.readout;
  }

type trial_outcome =
  | Success of int  (** right answer after this many attempts *)
  | Wrong of int  (** completed, silently wrong, after this many attempts *)
  | Gave_up  (** every allowed attempt ended in a detected failure *)
  | Errored of string
      (** the trial raised something other than [Termination_assertion]
          (backend limitation, unknown gate...): recorded, not retried,
          and — crucially — the rest of the campaign continues *)

type stats = {
  trials : int;
  successes : int;
  wrong : int;
  gave_up : int;
  errored : int;
  attempts : int;  (** total attempts across all trials *)
  detected_failures : int;
      (** attempts aborted by a [Termination_assertion] — the noise
          tripped an uncomputation claim, and the run knew it failed *)
  frame_attempts : int;  (** attempts completed by the Pauli-frame engine *)
  slow_attempts : int;  (** attempts that ran the full simulation *)
  fallback_reasons : string list;
      (** why frame-engine lanes fell back, oldest first, deduplicated —
          each names the offending gate/wire *)
  outcomes : trial_outcome array;  (** per-trial, for determinism checks *)
}

let success_rate s =
  if s.trials = 0 then 0.0 else float_of_int s.successes /. float_of_int s.trials

let pp_stats ppf s =
  Fmt.pf ppf
    "%d/%d trials succeeded (%.1f%%), %d wrong, %d gave up, %d errored; %d attempts (%d frame, %d slow), %d detected failures"
    s.successes s.trials (100.0 *. success_rate s) s.wrong s.gave_up s.errored
    s.attempts s.frame_attempts s.slow_attempts s.detected_failures;
  List.iter (fun r -> Fmt.pf ppf "@.  fallback: %s" r) s.fallback_reasons

(** One slow-path attempt: full noisy simulation at [seed], all
    non-assertion exceptions contained (one bad trial must never lose a
    million-trial sweep). *)
let slow_attempt_on (module B : Backend.S) ~seed cfg flat inputs =
  match
    let st, rng = exec_on (module B) ~seed cfg flat inputs in
    measure_outputs (module B) rng cfg st flat
  with
  | bits -> `Bits bits
  | exception Errors.Error (Errors.Termination_assertion _) -> `Detected
  | exception Errors.Error e -> `Errored (Errors.to_string e)
  | exception e -> `Errored (Printexc.to_string e)

(** [run_trials_on backend ~trials ~max_failures cfg b inputs ~expected]:
    run the circuit noisily [trials] times, each trial drawing its seeds
    from [Rng.derive master_seed] so the whole experiment replays from one
    number. An attempt whose noise trips an assertive termination is a
    {e detected} failure and is retried (up to [max_failures] retries per
    trial) — the runtime analogue of "the assertion told us the run went
    wrong, so run it again". Attempts that complete are compared against
    [expected]; silent corruption is counted, not retried (nothing at run
    time can see it — that asymmetry is the point of the experiment).

    [engine] picks the propagation machinery; outcomes are bit-identical
    either way (same derived seeds, same classification). [`Auto] (the
    default) runs eligible circuits through the {!Frame} engine — one
    round per retry rank, every still-alive trial a bit-packed lane —
    and falls back per lane (or whole-circuit) to the slow path;
    [`Slow] forces the historical one-simulation-per-attempt path. *)
let run_trials_on (module B : Backend.S) ?(master_seed = 1)
    ?(engine : Engine.t = Engine.default ()) ~trials ~max_failures cfg (b : Circuit.b)
    (inputs : bool list) ~(expected : bool list) : stats =
  if trials <= 0 then invalid_arg "Noise.run_trials: trials must be positive";
  if max_failures < 0 then invalid_arg "Noise.run_trials: negative max_failures";
  let flat = Circuit.inline b in
  let attempts = ref 0 and detected = ref 0 in
  let frame_attempts = ref 0 and slow_attempts = ref 0 in
  let reasons = ref [] in
  let note r = if not (List.mem r !reasons) then reasons := r :: !reasons in
  let seed_of t a = Rng.derive master_seed ((t * (max_failures + 1)) + a + 2) in
  let slow_attempt seed =
    incr attempts;
    incr slow_attempts;
    slow_attempt_on (module B) ~seed cfg flat inputs
  in
  let classify a bits = if bits = expected then Success (a + 1) else Wrong (a + 1) in
  let use_frame =
    match engine with
    | `Slow -> false
    | `Frame -> true
    (* the classical backend rejects circuits the frame engine would
       happily propagate (it has no quantum gates at all), so Auto only
       engages the frame over backends with Clifford-capable slow paths *)
    | `Auto -> not (String.equal B.name "classical")
  in
  let outcomes = Array.make trials Gave_up in
  if not use_frame then
    for t = 0 to trials - 1 do
      let rec go a =
        if a > max_failures then Gave_up
        else
          match slow_attempt (seed_of t a) with
          | `Bits bits -> classify a bits
          | `Detected ->
              incr detected;
              go (a + 1)
          | `Errored msg -> Errored msg
      in
      outcomes.(t) <- go 0
    done
  else begin
    (* round-based: round [a] propagates attempt [a] of every trial still
       alive, 63 trials per word operation; detected lanes re-enter the
       next round with their next derived seed, exactly as the slow
       path's per-trial retry loop would *)
    let alive = ref (List.init trials Fun.id) in
    let a = ref 0 in
    let all_slow = ref false in
    while !alive <> [] && !a <= max_failures do
      let lanes = Array.of_list !alive in
      let seeds = Array.map (fun t -> seed_of t !a) lanes in
      let next = ref [] in
      let retry t = if !a = max_failures then outcomes.(t) <- Gave_up else next := t :: !next in
      let slow_lane i t =
        match slow_attempt seeds.(i) with
        | `Bits bits -> outcomes.(t) <- classify !a bits
        | `Detected ->
            incr detected;
            retry t
        | `Errored msg -> outcomes.(t) <- Errored msg
      in
      if !all_slow then Array.iteri slow_lane lanes
      else begin
        let pr = Frame.noise_pass (channels_of cfg) flat inputs ~seeds in
        List.iter note pr.Frame.reasons;
        if pr.Frame.ineligible <> None then all_slow := true;
        Array.iteri
          (fun i t ->
            match Frame.lane_outcome pr i with
            | Frame.Lane_bits bits ->
                incr attempts;
                incr frame_attempts;
                outcomes.(t) <- classify !a (Array.to_list bits)
            | Frame.Lane_detected ->
                incr attempts;
                incr frame_attempts;
                incr detected;
                retry t
            | Frame.Lane_fallback -> slow_lane i t)
          lanes
      end;
      alive := List.rev !next;
      incr a
    done
  end;
  let count f = Array.fold_left (fun acc o -> if f o then acc + 1 else acc) 0 outcomes in
  {
    trials;
    successes = count (function Success _ -> true | _ -> false);
    wrong = count (function Wrong _ -> true | _ -> false);
    gave_up = count (function Gave_up -> true | _ -> false);
    errored = count (function Errored _ -> true | _ -> false);
    attempts = !attempts;
    detected_failures = !detected;
    frame_attempts = !frame_attempts;
    slow_attempts = !slow_attempts;
    fallback_reasons = List.rev !reasons;
    outcomes;
  }

let run_trials ?(master_seed = 1) ?engine ~trials ~max_failures cfg (b : Circuit.b)
    (inputs : bool list) ~(expected : bool list) : stats =
  run_trials_on (module Backend.Statevector) ~master_seed ?engine ~trials
    ~max_failures cfg b inputs ~expected

(* ------------------------------------------------------------------ *)
(* Plain output sampling (no expected answer, no retries)              *)

type sample =
  | Sampled of bool array  (** measured outputs, arity order *)
  | Assertion_tripped  (** a termination assertion aborted the trial *)
  | Sample_errored of string

type sample_summary = {
  sampled_trials : int;
  completed : int;
  assertion_tripped : int;
  sample_errored : int;
  frame_sampled : int;
  slow_sampled : int;
  snapshot_sampled : int;
  sample_reasons : string list;
}

(** [sample_trials_on backend ~trials cfg b inputs ~f]: one noisy run per
    trial (seed [Rng.derive master_seed (t + 2)] — the [run_trials]
    schedule at [max_failures = 0]), delivering each trial's measured
    outputs to [f t] in trial order. This is the entry point for
    workloads that decode outcomes offline — e.g. the repetition-code
    memory experiment, where the logical-error rate comes from majority
    votes over sampled syndrome/data bits, not from an expected-output
    comparison. Trials run through the {!Frame} engine in bit-packed
    blocks when eligible, the slow path otherwise. *)
let sample_trials_on (module B : Backend.S) ?(master_seed = 1)
    ?(engine : Engine.t = Engine.default ()) ~trials cfg (b : Circuit.b)
    (inputs : bool list) ~(f : int -> sample -> unit) : sample_summary =
  if trials <= 0 then invalid_arg "Noise.sample_trials: trials must be positive";
  let flat = Circuit.inline b in
  let completed = ref 0 and tripped = ref 0 and errored = ref 0 in
  let frame_n = ref 0 and slow_n = ref 0 and snapshot_n = ref 0 in
  let reasons = ref [] in
  let note r = if not (List.mem r !reasons) then reasons := r :: !reasons in
  let seed_of t = Rng.derive master_seed (t + 2) in
  let slow_trial t =
    incr slow_n;
    match slow_attempt_on (module B) ~seed:(seed_of t) cfg flat inputs with
    | `Bits bits ->
        incr completed;
        f t (Sampled (Array.of_list bits))
    | `Detected ->
        incr tripped;
        f t Assertion_tripped
    | `Errored msg ->
        incr errored;
        f t (Sample_errored msg)
  in
  let use_frame =
    match engine with
    | `Slow -> false
    | `Frame -> true
    | `Auto -> not (String.equal B.name "classical")
  in
  (* With every channel off, trial [t] is exactly the plain backend run
     at [seed_of t] — so [`Auto] freezes the pre-measurement state once
     ({!Backend.S.snapshot}) and draws every trial from the frozen copy;
     the sampling law (backend.mli) makes each outcome bit-identical to
     the full re-simulation the slow path would have run. Forced
     engines keep their historical machinery (they exist as cross-check
     paths), and any trouble in the one clean run — mid-circuit
     randomness ([snapshot] = [None]), tripped assertion, backend
     limitation — falls through to the engine dispatch below. *)
  let noiseless_snapshot =
    if engine <> `Auto || not (is_noiseless cfg) then None
    else
      match B.run_circuit ~seed:1 b inputs with
      | st -> B.snapshot st
      | exception _ -> None
  in
  (match noiseless_snapshot with
  | Some snap ->
      for t = 0 to trials - 1 do
        match
          B.sample_from snap ~rng:(Rng.create (seed_of t)) flat.Circuit.outputs
        with
        | bits ->
            incr snapshot_n;
            incr completed;
            f t (Sampled (Array.of_list bits))
        | exception Errors.Error (Errors.Termination_assertion _) ->
            incr tripped;
            f t Assertion_tripped
        | exception Errors.Error e ->
            incr errored;
            f t (Sample_errored (Errors.to_string e))
        | exception e ->
            incr errored;
            f t (Sample_errored (Printexc.to_string e))
      done
  | None ->
  if not use_frame then
    for t = 0 to trials - 1 do
      slow_trial t
    done
  else begin
    (* chunked passes: bounded memory however many trials are asked for *)
    let chunk = Frame.lanes_per_word * 1024 in
    let all_slow = ref false in
    let t0 = ref 0 in
    while !t0 < trials do
      let n = min chunk (trials - !t0) in
      if !all_slow then
        for i = 0 to n - 1 do
          slow_trial (!t0 + i)
        done
      else begin
        let seeds = Array.init n (fun i -> seed_of (!t0 + i)) in
        let pr = Frame.noise_pass (channels_of cfg) flat inputs ~seeds in
        List.iter note pr.Frame.reasons;
        if pr.Frame.ineligible <> None then all_slow := true;
        for i = 0 to n - 1 do
          let t = !t0 + i in
          match Frame.lane_outcome pr i with
          | Frame.Lane_bits bits ->
              incr frame_n;
              incr completed;
              f t (Sampled bits)
          | Frame.Lane_detected ->
              incr frame_n;
              incr tripped;
              f t Assertion_tripped
          | Frame.Lane_fallback -> slow_trial t
        done
      end;
      t0 := !t0 + n
    done
  end);
  {
    sampled_trials = trials;
    completed = !completed;
    assertion_tripped = !tripped;
    sample_errored = !errored;
    frame_sampled = !frame_n;
    slow_sampled = !slow_n;
    snapshot_sampled = !snapshot_n;
    sample_reasons = List.rev !reasons;
  }

let sample_trials ?(master_seed = 1) ?engine ~trials cfg (b : Circuit.b)
    (inputs : bool list) ~(f : int -> sample -> unit) : sample_summary =
  sample_trials_on (module Backend.Statevector) ~master_seed ?engine ~trials cfg b
    inputs ~f
