(** Noise channels over the simulation backends: bit flip, phase flip,
    depolarizing and measurement readout error, applied per-gate/per-wire
    during execution, with every random choice drawn from streams derived
    from one master seed ({!Quipper_math.Rng.derive}) — every noisy run
    replays exactly.

    Noisy execution is generic over {!Backend.S} (the Pauli kicks are
    Clifford operations, so campaigns also run on the stabilizer backend
    where the circuit's own gates permit); the [_on] functions take the
    backend explicitly, the historical names are fixed to the
    statevector backend and behave exactly as before.

    A configuration with all probabilities zero is bit-identical to the
    plain backend run on the same seed (property-tested). *)

open Quipper

type config = {
  bit_flip : float;  (** X after each gate, per touched wire *)
  phase_flip : float;  (** Z after each gate, per touched wire *)
  depolarizing : float;  (** X/Y/Z uniformly, per touched wire *)
  readout : float;  (** recorded measurement outcome flips *)
}

val none : config
val bit_flip : float -> config
val phase_flip : float -> config
val depolarizing : float -> config
val readout : float -> config
val is_noiseless : config -> bool
val pp_config : Format.formatter -> config -> unit

val run_circuit_on :
  (module Backend.S with type state = 's) ->
  ?seed:int ->
  config ->
  Circuit.b ->
  bool list ->
  's
(** Run a generated circuit noisily on basis-state inputs, on the given
    backend. Raises [Termination_assertion] if noise breaks an
    uncomputation claim — the checks of the extended circuit model keep
    firing under noise. *)

val run_and_measure_on :
  (module Backend.S) -> ?seed:int -> config -> Circuit.b -> bool list -> bool list
(** {!run_circuit_on}, then measure every output (readout noise applies
    to those final measurements too); returns outputs in arity order. *)

val run_circuit : ?seed:int -> config -> Circuit.b -> bool list -> Statevector.state
(** {!run_circuit_on} fixed to the statevector backend. *)

val run_and_measure : ?seed:int -> config -> Circuit.b -> bool list -> bool list
(** {!run_and_measure_on} fixed to the statevector backend. *)

(** Outcome of one trial of {!run_trials}. *)
type trial_outcome =
  | Success of int  (** right answer after this many attempts *)
  | Wrong of int  (** completed, silently wrong — undetectable at run time *)
  | Gave_up  (** every allowed attempt ended in a detected failure *)
  | Errored of string
      (** the trial raised something other than [Termination_assertion];
          recorded and skipped so one bad trial never loses a campaign *)

type stats = {
  trials : int;
  successes : int;
  wrong : int;
  gave_up : int;
  errored : int;
  attempts : int;
  detected_failures : int;
      (** attempts aborted by [Termination_assertion]: failures the
          assertive terminations caught at run time *)
  frame_attempts : int;  (** attempts completed by the Pauli-frame engine *)
  slow_attempts : int;  (** attempts that ran the full simulation *)
  fallback_reasons : string list;
      (** distinct frame-fallback reasons, oldest first, each naming the
          offending gate/wire *)
  outcomes : trial_outcome array;
}

val success_rate : stats -> float
val pp_stats : Format.formatter -> stats -> unit

val run_trials_on :
  (module Backend.S) ->
  ?master_seed:int ->
  ?engine:Engine.t ->
  trials:int ->
  max_failures:int ->
  config ->
  Circuit.b ->
  bool list ->
  expected:bool list ->
  stats
(** Resilient trial runner on the given backend: [trials] independent
    noisy runs, per-trial seeds derived from [master_seed]. A trial
    retries (at most [max_failures] times) whenever an assertive
    termination detects the failure; completed-but-wrong answers are
    counted, not retried — quantifying exactly what detection buys.
    Deterministic for a fixed master seed, whatever the [engine]. *)

val run_trials :
  ?master_seed:int ->
  ?engine:Engine.t ->
  trials:int ->
  max_failures:int ->
  config ->
  Circuit.b ->
  bool list ->
  expected:bool list ->
  stats
(** {!run_trials_on} fixed to the statevector backend. *)

(** {2 Plain output sampling}

    For workloads that decode outcomes offline (e.g. the repetition-code
    memory experiment) rather than compare against one expected answer. *)

type sample =
  | Sampled of bool array  (** measured outputs, arity order *)
  | Assertion_tripped  (** a termination assertion aborted the trial *)
  | Sample_errored of string

type sample_summary = {
  sampled_trials : int;
  completed : int;
  assertion_tripped : int;
  sample_errored : int;
  frame_sampled : int;  (** trials completed by the Pauli-frame engine *)
  slow_sampled : int;  (** trials that ran the full simulation *)
  snapshot_sampled : int;
      (** trials drawn from one frozen pre-measurement state
          ({!Backend.S.snapshot}) — the noiseless fast path *)
  sample_reasons : string list;  (** distinct frame-fallback reasons *)
}

val sample_trials_on :
  (module Backend.S) ->
  ?master_seed:int ->
  ?engine:Engine.t ->
  trials:int ->
  config ->
  Circuit.b ->
  bool list ->
  f:(int -> sample -> unit) ->
  sample_summary
(** One noisy run per trial (no retries; trial [t]'s seed is
    [Rng.derive master_seed (t + 2)], the {!run_trials} schedule at
    [max_failures = 0]), delivering each trial's outputs to [f] in trial
    order. Eligible circuits run through the frame engine in bit-packed
    blocks of bounded memory; results are bit-identical to [`Slow].

    When the configuration is noiseless and the engine is [`Auto], the
    campaign collapses to the backend's sampling surface: one clean run
    freezes the pre-measurement state ({!Backend.S.snapshot}) and every
    trial is drawn from the frozen copy under its own derived RNG — the
    sampling law keeps each outcome bit-identical to the full
    re-simulation, at marginal cost per trial near zero (counted in
    [snapshot_sampled]). *)

val sample_trials :
  ?master_seed:int ->
  ?engine:Engine.t ->
  trials:int ->
  config ->
  Circuit.b ->
  bool list ->
  f:(int -> sample -> unit) ->
  sample_summary
(** {!sample_trials_on} fixed to the statevector backend. *)
