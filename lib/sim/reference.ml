(** The seed statevector engine, preserved verbatim as a reference
    oracle.

    This is the original reallocate-and-copy implementation that
    {!Statevector} replaced: every [Init]/[Term] allocates a fresh
    2^n amplitude array and copies, and every gate goes through the
    generic 2x2/4x4 matrix loop. It is deliberately kept around for

    - the bit-for-bit property tests: the fast engine must produce
      exactly the floats this engine produces, amplitude by amplitude,
      on random ancilla-heavy circuits;
    - bench section N2: old-vs-new timings of the same workloads.

    Do not use it for anything else — it is the slow path by
    construction. *)

open Quipper

let max_qubits = 22

type state = {
  mutable re : float array;
  mutable im : float array;
  mutable n : int; (* number of live qubits *)
  mutable pos : (Wire.t * int) list; (* wire -> bit position, assoc list *)
  cenv : (Wire.t, bool) Hashtbl.t; (* classical wires *)
  rng : Quipper_math.Rng.t;
}

let create ?(seed = 1) () =
  {
    re = [| 1.0 |];
    im = [| 0.0 |];
    n = 0;
    pos = [];
    cenv = Hashtbl.create 16;
    rng = Quipper_math.Rng.create seed;
  }

let num_qubits st = st.n

let position st w =
  match List.assoc_opt w st.pos with
  | Some p -> p
  | None -> Errors.raise_ (Simulation (Fmt.str "reference: wire %d is not a live qubit" w))

let qubit_index = position

let read_bit st w =
  match Hashtbl.find_opt st.cenv w with
  | Some v -> v
  | None -> Errors.raise_ (Simulation (Fmt.str "reference: wire %d has no classical value" w))

let amplitudes st =
  Array.init (Array.length st.re) (fun i -> Quipper_math.Cplx.make st.re.(i) st.im.(i))

(* ------------------------------------------------------------------ *)
(* State surgery: reallocate-and-copy                                  *)

let add_qubit st (w : Wire.t) (value : bool) =
  if st.n >= max_qubits then
    Errors.raise_
      (Simulation (Fmt.str "reference: more than %d live qubits" max_qubits));
  let size = Array.length st.re in
  let re = Array.make (2 * size) 0.0 and im = Array.make (2 * size) 0.0 in
  let off = if value then size else 0 in
  Array.blit st.re 0 re off size;
  Array.blit st.im 0 im off size;
  st.re <- re;
  st.im <- im;
  st.pos <- (w, st.n) :: st.pos;
  st.n <- st.n + 1

let remove_qubit st (w : Wire.t) (value : bool) =
  let p = position st w in
  let size = Array.length st.re in
  let mask = 1 lsl p in
  let bad = ref 0.0 in
  for i = 0 to size - 1 do
    let bit = i land mask <> 0 in
    if bit <> value then bad := !bad +. ((st.re.(i) *. st.re.(i)) +. (st.im.(i) *. st.im.(i)))
  done;
  if !bad > 1e-9 then
    Errors.raise_ (Termination_assertion { wire = w; expected = value });
  let re = Array.make (size / 2) 0.0 and im = Array.make (size / 2) 0.0 in
  let lowmask = mask - 1 in
  for j = 0 to (size / 2) - 1 do
    let i = j land lowmask lor ((j land lnot lowmask) lsl 1) lor (if value then mask else 0) in
    re.(j) <- st.re.(i);
    im.(j) <- st.im.(i)
  done;
  st.re <- re;
  st.im <- im;
  st.pos <-
    List.filter_map
      (fun (w', p') ->
        if w' = w then None else Some (w', if p' > p then p' - 1 else p'))
      st.pos;
  st.n <- st.n - 1

(* ------------------------------------------------------------------ *)
(* Gate application: generic matrix dispatch                           *)

let resolve_controls st (cs : Gate.control list) : (int * int) option =
  let rec go mask want = function
    | [] -> Some (mask, want)
    | (c : Gate.control) :: tl -> (
        match c.cty with
        | Wire.C ->
            if read_bit st c.cwire = c.positive then go mask want tl else None
        | Wire.Q ->
            let p = position st c.cwire in
            let bit = 1 lsl p in
            go (mask lor bit) (if c.positive then want lor bit else want) tl)
  in
  go 0 0 cs

let apply_1q st (m : Quipper_math.Mat2.t) (w : Wire.t) (cs : Gate.control list) =
  match resolve_controls st cs with
  | None -> ()
  | Some (cmask, cwant) ->
      let p = position st w in
      let bit = 1 lsl p in
      let size = Array.length st.re in
      let open Quipper_math in
      let a = Mat2.get m 0 0 and b = Mat2.get m 0 1 in
      let c = Mat2.get m 1 0 and d = Mat2.get m 1 1 in
      let a_re = Cplx.re a and a_im = Cplx.im a in
      let b_re = Cplx.re b and b_im = Cplx.im b in
      let c_re = Cplx.re c and c_im = Cplx.im c in
      let d_re = Cplx.re d and d_im = Cplx.im d in
      for i0 = 0 to size - 1 do
        if i0 land bit = 0 then begin
          let i1 = i0 lor bit in
          if i0 land cmask = cwant then begin
            let x_re = st.re.(i0) and x_im = st.im.(i0) in
            let y_re = st.re.(i1) and y_im = st.im.(i1) in
            st.re.(i0) <- (a_re *. x_re) -. (a_im *. x_im) +. (b_re *. y_re) -. (b_im *. y_im);
            st.im.(i0) <- (a_re *. x_im) +. (a_im *. x_re) +. (b_re *. y_im) +. (b_im *. y_re);
            st.re.(i1) <- (c_re *. x_re) -. (c_im *. x_im) +. (d_re *. y_re) -. (d_im *. y_im);
            st.im.(i1) <- (c_re *. x_im) +. (c_im *. x_re) +. (d_re *. y_im) +. (d_im *. y_re)
          end
        end
      done

let apply_2q st (m : Quipper_math.Mat2.t) (wa : Wire.t) (wb : Wire.t)
    (cs : Gate.control list) =
  match resolve_controls st cs with
  | None -> ()
  | Some (cmask, cwant) ->
      let pa = position st wa and pb = position st wb in
      let ba = 1 lsl pa and bb = 1 lsl pb in
      let size = Array.length st.re in
      let open Quipper_math in
      let entry r c = Mat2.get m r c in
      for i = 0 to size - 1 do
        if i land ba = 0 && i land bb = 0 && i land cmask = cwant then begin
          let idx = [| i; i lor bb; i lor ba; i lor ba lor bb |] in
          let xr = Array.map (fun j -> st.re.(j)) idx in
          let xi = Array.map (fun j -> st.im.(j)) idx in
          for r = 0 to 3 do
            let acc_re = ref 0.0 and acc_im = ref 0.0 in
            for c = 0 to 3 do
              let e = entry r c in
              let er = Cplx.re e and ei = Cplx.im e in
              acc_re := !acc_re +. (er *. xr.(c)) -. (ei *. xi.(c));
              acc_im := !acc_im +. (er *. xi.(c)) +. (ei *. xr.(c))
            done;
            st.re.(idx.(r)) <- !acc_re;
            st.im.(idx.(r)) <- !acc_im
          done
        end
      done

let apply_phase st angle (cs : Gate.control list) =
  match resolve_controls st cs with
  | None -> ()
  | Some (cmask, cwant) ->
      let pr = cos angle and pi = sin angle in
      for i = 0 to Array.length st.re - 1 do
        if i land cmask = cwant then begin
          let x_re = st.re.(i) and x_im = st.im.(i) in
          st.re.(i) <- (pr *. x_re) -. (pi *. x_im);
          st.im.(i) <- (pr *. x_im) +. (pi *. x_re)
        end
      done

let gate_matrix name inv : Quipper_math.Mat2.t option =
  let open Quipper_math.Mat2 in
  let m =
    match name with
    | "not" | "X" -> Some pauli_x
    | "Y" -> Some pauli_y
    | "Z" -> Some pauli_z
    | "H" -> Some hadamard
    | "S" -> Some phase_s
    | "T" -> Some phase_t
    | "V" -> Some sqrt_not
    | _ -> None
  in
  match m with
  | None -> None
  | Some m -> Some (if inv then adjoint m else m)

let rot_matrix name angle inv : Quipper_math.Mat2.t option =
  let open Quipper_math.Mat2 in
  let angle = if inv then -.angle else angle in
  match name with
  | "exp(-i%Z)" -> Some (exp_minus_izt angle)
  | "Rz" -> Some (rot_z angle)
  | "Rx" -> Some (rot_x angle)
  | "R" | "Ph" ->
      Some
        (of_rows
           [| [| Quipper_math.Cplx.one; Quipper_math.Cplx.zero |];
              [| Quipper_math.Cplx.zero; Quipper_math.Cplx.cis angle |] |])
  | _ -> None

let measure st (w : Wire.t) : bool =
  let p = position st w in
  let mask = 1 lsl p in
  let size = Array.length st.re in
  let p1 = ref 0.0 in
  for i = 0 to size - 1 do
    if i land mask <> 0 then
      p1 := !p1 +. ((st.re.(i) *. st.re.(i)) +. (st.im.(i) *. st.im.(i)))
  done;
  let outcome = Quipper_math.Rng.float st.rng < !p1 in
  let keep_prob = if outcome then !p1 else 1.0 -. !p1 in
  let scale = 1.0 /. sqrt (max keep_prob 1e-300) in
  for i = 0 to size - 1 do
    let bit = i land mask <> 0 in
    if bit <> outcome then begin
      st.re.(i) <- 0.0;
      st.im.(i) <- 0.0
    end
    else begin
      st.re.(i) <- st.re.(i) *. scale;
      st.im.(i) <- st.im.(i) *. scale
    end
  done;
  remove_qubit st w outcome;
  Hashtbl.replace st.cenv w outcome;
  outcome

let prob_one st (w : Wire.t) : float =
  let p = position st w in
  let mask = 1 lsl p in
  let acc = ref 0.0 in
  for i = 0 to Array.length st.re - 1 do
    if i land mask <> 0 then
      acc := !acc +. ((st.re.(i) *. st.re.(i)) +. (st.im.(i) *. st.im.(i)))
  done;
  !acc

(* ------------------------------------------------------------------ *)

let apply_gate st (g : Gate.t) =
  match g with
  | Gate.Gate { name = "swap"; inv = _; targets = [ a; b ]; controls } ->
      apply_2q st
        Quipper_math.Mat2.(
          of_rows
            [| [| Quipper_math.Cplx.one; Quipper_math.Cplx.zero; Quipper_math.Cplx.zero; Quipper_math.Cplx.zero |];
               [| Quipper_math.Cplx.zero; Quipper_math.Cplx.zero; Quipper_math.Cplx.one; Quipper_math.Cplx.zero |];
               [| Quipper_math.Cplx.zero; Quipper_math.Cplx.one; Quipper_math.Cplx.zero; Quipper_math.Cplx.zero |];
               [| Quipper_math.Cplx.zero; Quipper_math.Cplx.zero; Quipper_math.Cplx.zero; Quipper_math.Cplx.one |] |])
        a b controls
  | Gate.Gate { name = "W"; inv = _; targets = [ a; b ]; controls } ->
      apply_2q st Quipper_math.Mat2.w_gate a b controls
  | Gate.Gate { name; inv; targets = [ t ]; controls } -> (
      match gate_matrix name inv with
      | Some m -> apply_1q st m t controls
      | None ->
          Errors.raise_ (Simulation (Fmt.str "reference: unknown gate %s" name)))
  | Gate.Gate { name; _ } ->
      Errors.raise_ (Simulation (Fmt.str "reference: unsupported gate %s" name))
  | Gate.Rot { name; angle; inv; targets = [ t ]; controls } -> (
      match rot_matrix name angle inv with
      | Some m -> apply_1q st m t controls
      | None ->
          Errors.raise_ (Simulation (Fmt.str "reference: unknown rotation %s" name)))
  | Gate.Rot { name; _ } ->
      Errors.raise_ (Simulation (Fmt.str "reference: unsupported rotation %s" name))
  | Gate.Phase { angle; controls } -> apply_phase st angle controls
  | Gate.Init { ty = Wire.Q; value; wire } -> add_qubit st wire value
  | Gate.Init { ty = Wire.C; value; wire } -> Hashtbl.replace st.cenv wire value
  | Gate.Term { ty = Wire.Q; value; wire } -> remove_qubit st wire value
  | Gate.Term { ty = Wire.C; value; wire } ->
      let v = read_bit st wire in
      if v <> value then Errors.raise_ (Termination_assertion { wire; expected = value });
      Hashtbl.remove st.cenv wire
  | Gate.Discard { ty = Wire.Q; wire } ->
      ignore (measure st wire);
      Hashtbl.remove st.cenv wire
  | Gate.Discard { ty = Wire.C; wire } -> Hashtbl.remove st.cenv wire
  | Gate.Measure { wire } -> ignore (measure st wire)
  | Gate.Cgate { name; out; ins } ->
      let vs = List.map (read_bit st) ins in
      let v =
        match (name, vs) with
        | "not", [ a ] -> not a
        | "xor", vs -> List.fold_left ( <> ) false vs
        | "and", vs -> List.for_all Fun.id vs
        | "or", vs -> List.exists Fun.id vs
        | _ -> Errors.raise_ (Simulation (Fmt.str "unknown classical gate %s" name))
      in
      Hashtbl.replace st.cenv out v
  | Gate.Subroutine { name; _ } ->
      Errors.raise_
        (Simulation (Fmt.str "reference: subroutine call %s (inline first)" name))
  | Gate.Comment _ -> ()

(* ------------------------------------------------------------------ *)
(* Run functions                                                       *)

let run_fun ?seed ~(in_ : ('b, 'q, 'c) Qdata.t) (input : 'b)
    (f : 'q -> 'r Circ.t) : state * 'r =
  let st = create ?seed () in
  let ctx =
    Circ.create_ctx ~boxing:false ~on_emit:(apply_gate st)
      ~lift:(fun _ w -> read_bit st w)
      ()
  in
  let ins =
    List.map (fun ty -> { Wire.wire = Circ.alloc_input ctx ty; ty }) in_.Qdata.tys
  in
  List.iter2
    (fun (e : Wire.endpoint) v ->
      match e.Wire.ty with
      | Wire.Q -> add_qubit st e.Wire.wire v
      | Wire.C -> Hashtbl.replace st.cenv e.Wire.wire v)
    ins (in_.Qdata.bleaves input);
  let x = in_.Qdata.qbuild ins in
  let r = f x ctx in
  (st, r)

let run_circuit ?seed (b : Circuit.b) (inputs : bool list) : state =
  let flat = Circuit.inline b in
  let st = create ?seed () in
  (if List.length inputs <> List.length flat.Circuit.inputs then
     Errors.raise_ (Shape_mismatch "reference run: input arity"));
  List.iter2
    (fun (e : Wire.endpoint) v ->
      match e.Wire.ty with
      | Wire.Q -> add_qubit st e.Wire.wire v
      | Wire.C -> Hashtbl.replace st.cenv e.Wire.wire v)
    flat.Circuit.inputs inputs;
  Array.iter (apply_gate st) flat.Circuit.gates;
  st
