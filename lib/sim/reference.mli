(** The seed statevector engine, preserved as a reference oracle.

    The original reallocate-and-copy implementation that {!Statevector}
    replaced: every [Init]/[Term] allocates a fresh [2^n] amplitude array
    and every gate goes through the generic matrix loop. Kept for the
    bit-for-bit property tests (the fast engine must reproduce exactly
    these floats) and for the old-vs-new timings of bench section N2.
    Deliberately slow — do not use it for anything else. *)

open Quipper

val max_qubits : int
(** The seed's original limit (22). *)

type state

val create : ?seed:int -> unit -> state
val num_qubits : state -> int

val qubit_index : state -> Wire.t -> int
(** Bit position of a live qubit in the amplitude index; same ordering
    discipline as {!Statevector.qubit_index}. *)

val read_bit : state -> Wire.t -> bool
val amplitudes : state -> Quipper_math.Cplx.t array
val prob_one : state -> Wire.t -> float
val measure : state -> Wire.t -> bool
val apply_gate : state -> Gate.t -> unit

val run_fun :
  ?seed:int -> in_:('b, 'q, 'c) Qdata.t -> 'b -> ('q -> 'r Circ.t) -> state * 'r

val run_circuit : ?seed:int -> Circuit.b -> bool list -> state
