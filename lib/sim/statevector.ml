(** Dense statevector simulation.

    The paper's [run_generic] (§4.4.5): full quantum simulation, which is
    "necessarily inefficient on a classical computer" — exponential in the
    number of live qubits — but indispensable for validating circuits and
    for running the small instances of the algorithms in our examples.

    The simulator implements Quipper's *extended* circuit model (§4.2):
    qubits are created and destroyed dynamically ([Init] grows the state,
    assertive [Term] checks that the qubit really is disentangled in the
    asserted basis state — catching wrong uncomputation assertions — and
    shrinks the state), measurements collapse the state probabilistically
    (seeded, for reproducibility) and move the wire to a classical
    environment, and classically-controlled gates consult that environment.

    The state is stored as two unboxed float arrays (real and imaginary
    parts); qubit k of the internal order corresponds to bit k of the
    amplitude index. The arrays are {e capacity-managed}: only the first
    [2^n] elements are live, and the arrays grow geometrically and never
    shrink, so the [Init]/[Term] ancilla churn typical of Quipper circuits
    (§4.2.2) costs a fill or a blit instead of an allocate-and-copy per
    gate. Gates dispatch on {!Gate.fast_class} to the specialised in-place
    kernels of {!Kernel} — index swaps for X/CNOT/Toffoli, diagonal
    multiplies for the phase family, butterflies only for H and W — with
    the generic matrix path as fallback. All kernel results are bit-for-bit
    identical to the seed engine preserved in {!Reference}; probability
    reductions stay sequential so sampled outcomes are independent of the
    domain count. *)

open Quipper

let max_qubits = 25 (* 32M amplitudes * 16 bytes = 512 MB *)

type state = {
  mutable re : float array; (* capacity-managed: length >= size *)
  mutable im : float array;
  mutable n : int; (* number of live qubits *)
  mutable size : int; (* = 2^n, the live prefix of re/im *)
  mutable zeros_from : int;
      (* watermark: re.(i) = im.(i) = 0.0 exactly for every i in
         [zeros_from, capacity). Lets [add_qubit false] skip the
         upper-half fill when the region is still zero from a previous
         round, and a top-position [Term false] skip the assertion scan
         (a sum of exact zeros is exactly 0.0, the same float the full
         scan returns) — so a clean Init/Term ancilla cycle that never
         touches the ancilla costs O(1). *)
  mutable pos : (Wire.t * int) list; (* wire -> bit position, assoc list *)
  cenv : (Wire.t, bool) Hashtbl.t; (* classical wires *)
  rng : Quipper_math.Rng.t;
  mutable rng_touched : bool;
      (* has any measurement consumed from [rng]? While false, the
         stream is indistinguishable from a fresh [Rng.create seed], so
         a frozen copy of the state can replay terminal measurements
         bit-identically under any seed — the snapshot law. *)
}

let initial_capacity = 16

let create ?(seed = 1) () =
  let re = Array.make initial_capacity 0.0 in
  re.(0) <- 1.0;
  {
    re;
    im = Array.make initial_capacity 0.0;
    n = 0;
    size = 1;
    zeros_from = 1;
    pos = [];
    cenv = Hashtbl.create 16;
    rng = Quipper_math.Rng.create seed;
    rng_touched = false;
  }

let num_qubits st = st.n
let capacity st = Array.length st.re

let position st w =
  match List.assoc_opt w st.pos with
  | Some p -> p
  | None -> Errors.raise_ (Simulation (Fmt.str "statevector: wire %d is not a live qubit" w))

let qubit_index = position

let read_bit st w =
  match Hashtbl.find_opt st.cenv w with
  | Some v -> v
  | None -> Errors.raise_ (Simulation (Fmt.str "statevector: wire %d has no classical value" w))

let set_bit st w v = Hashtbl.replace st.cenv w v

(* Gates are about to write somewhere in [0, size): the zero watermark
   can no longer vouch for anything below [size]. *)
let dirty st = if st.zeros_from < st.size then st.zeros_from <- st.size

let amplitudes st =
  Array.init st.size (fun i -> Quipper_math.Cplx.make st.re.(i) st.im.(i))

let probabilities st =
  Array.init st.size (fun i -> (st.re.(i) *. st.re.(i)) +. (st.im.(i) *. st.im.(i)))

(* ------------------------------------------------------------------ *)
(* State surgery: in place, amortised by capacity                      *)

let ensure_capacity st want =
  if Array.length st.re < want then begin
    (* [want] is a power of two >= 2*size, so this is geometric growth;
       capacity never shrinks, which is what makes ancilla churn cheap *)
    let re = Array.make want 0.0 and im = Array.make want 0.0 in
    Array.blit st.re 0 re 0 st.size;
    Array.blit st.im 0 im 0 st.size;
    st.re <- re;
    st.im <- im;
    (* the fresh arrays are zero beyond the blit, and any zero suffix of
       the live prefix was copied verbatim *)
    if st.zeros_from > st.size then st.zeros_from <- st.size
  end

let add_qubit st (w : Wire.t) (value : bool) =
  if st.n >= max_qubits then
    Errors.raise_
      (Simulation (Fmt.str "statevector: more than %d live qubits" max_qubits));
  let size = st.size in
  ensure_capacity st (2 * size);
  (* new qubit occupies the highest bit position st.n *)
  if value then begin
    (* amplitude j moves to j + size; Array.blit handles the overlap *)
    Array.blit st.re 0 st.re size size;
    Array.blit st.im 0 st.im size size;
    Array.fill st.re 0 size 0.0;
    Array.fill st.im 0 size 0.0;
    if st.zeros_from < 2 * size then st.zeros_from <- 2 * size
  end
  else begin
    (* the new upper half must be exactly 0.0; skip whatever suffix the
       watermark already vouches for (typically all of it, when the
       previous ancilla at this position terminated untouched) *)
    if st.zeros_from > size then begin
      let stop = if st.zeros_from < 2 * size then st.zeros_from else 2 * size in
      Array.fill st.re size (stop - size) 0.0;
      Array.fill st.im size (stop - size) 0.0
    end;
    if st.zeros_from <= 2 * size && st.zeros_from > size then
      st.zeros_from <- size
  end;
  st.pos <- (w, st.n) :: st.pos;
  st.n <- st.n + 1;
  st.size <- 2 * size

(** Remove qubit [w], which must be in the computational basis state
    [value] (up to [eps] in probability). Used by [Term] and after
    measurement collapse. Compacts the kept half forward in place: the
    read index never precedes the write index, so a single ascending
    pass is safe. Stale data beyond the new [size] is dead; the next
    [add_qubit] overwrites it. *)
let remove_qubit ?(on_assert_fail : (unit -> unit) option) st (w : Wire.t) (value : bool) =
  let p = position st w in
  let size = st.size in
  let mask = 1 lsl p in
  (* probability that qubit p is NOT in [value]. This sum only faces
     the 1e-9 assertion threshold — it never reaches amplitudes or
     sampling — so the lane-parallel reduction is safe here. When the
     qubit holds the top position, [value = false] and the watermark
     covers the whole upper half, the bad amplitudes are all exactly
     0.0 and the scan is skipped (a sum of exact zeros is 0.0). *)
  let bad =
    if (not value) && 2 * mask = size && st.zeros_from <= size / 2 then 0.0
    else
      Kernel.sum_norm2_half_unord ~re:st.re ~im:st.im ~size ~bit:mask
        ~want:(not value)
  in
  if bad > 1e-9 then begin
    (match on_assert_fail with Some f -> f () | None -> ());
    Errors.raise_ (Termination_assertion { wire = w; expected = value })
  end;
  let re = st.re and im = st.im in
  let half = size / 2 in
  let lowmask = mask - 1 in
  let voff = if value then mask else 0 in
  (* compaction writes into [0, half) unless it is the no-move case
     (top position, value = false, src = dst throughout) *)
  if (voff <> 0 || mask <> half) && st.zeros_from < half then
    st.zeros_from <- half;
  if mask >= 32 then begin
    (* run-wise compaction: every run of [mask] kept amplitudes is
       contiguous, and reads never precede writes, so ascending memmoves
       are safe. Terminating the top-position qubit (the with_ancilla
       LIFO case) at [value = false] moves nothing at all. *)
    let j = ref 0 in
    while !j < half do
      let src = ((!j land lnot lowmask) lsl 1) lor (!j land lowmask) lor voff in
      let len = let r = half - !j in if mask < r then mask else r in
      if src <> !j then begin
        Array.blit re src re !j len;
        Array.blit im src im !j len
      end;
      j := !j + len
    done
  end
  else
    for j = 0 to half - 1 do
      let i = ((j land lnot lowmask) lsl 1) lor (j land lowmask) lor voff in
      Array.unsafe_set re j (Array.unsafe_get re i *. 1.0);
      Array.unsafe_set im j (Array.unsafe_get im i *. 1.0)
    done;
  st.pos <-
    List.filter_map
      (fun (w', p') ->
        if w' = w then None else Some (w', if p' > p then p' - 1 else p'))
      st.pos;
  st.n <- st.n - 1;
  st.size <- size / 2

(* ------------------------------------------------------------------ *)
(* Gate application                                                    *)

(** Quantum-control mask/value for an index: returns (mask, want) over
    index bits; classical controls are evaluated immediately. [None] means
    a classical control is unsatisfied — skip the gate. *)
let resolve_controls st (cs : Gate.control list) : (int * int) option =
  let rec go mask want = function
    | [] -> Some (mask, want)
    | (c : Gate.control) :: tl -> (
        match c.cty with
        | Wire.C ->
            if read_bit st c.cwire = c.positive then go mask want tl else None
        | Wire.Q ->
            let p = position st c.cwire in
            let bit = 1 lsl p in
            go (mask lor bit) (if c.positive then want lor bit else want) tl)
  in
  go 0 0 cs

(** Resolve controls and target, then run a single-qubit kernel. *)
let with_1q st (t : Wire.t) (cs : Gate.control list)
    (k :
      re:float array ->
      im:float array ->
      size:int ->
      bit:int ->
      cmask:int ->
      cwant:int ->
      unit) =
  match resolve_controls st cs with
  | None -> ()
  | Some (cmask, cwant) ->
      let bit = 1 lsl position st t in
      dirty st;
      k ~re:st.re ~im:st.im ~size:st.size ~bit ~cmask ~cwant

(** Resolve controls and targets, then run a two-qubit kernel; [ba] is
    the first wire's bit (the high bit of the |ab> basis order). *)
let with_2q st (wa : Wire.t) (wb : Wire.t) (cs : Gate.control list)
    (k :
      re:float array ->
      im:float array ->
      size:int ->
      ba:int ->
      bb:int ->
      cmask:int ->
      cwant:int ->
      unit) =
  match resolve_controls st cs with
  | None -> ()
  | Some (cmask, cwant) ->
      let ba = 1 lsl position st wa and bb = 1 lsl position st wb in
      dirty st;
      k ~re:st.re ~im:st.im ~size:st.size ~ba ~bb ~cmask ~cwant

let apply_1q st (m : Quipper_math.Mat2.t) (w : Wire.t) (cs : Gate.control list) =
  with_1q st w cs (fun ~re ~im ~size ~bit ~cmask ~cwant ->
      Kernel.k1_generic ~re ~im ~size ~bit ~cmask ~cwant m)

(** Diagonal gate: take the two diagonal entries from the {e same} matrix
    construction the generic path would use, so specialised and generic
    results agree to the bit, and hand them to the diagonal kernel. *)
let apply_diag st (m : Quipper_math.Mat2.t) (w : Wire.t) (cs : Gate.control list) =
  let open Quipper_math in
  let d0 = Mat2.get m 0 0 and d1 = Mat2.get m 1 1 in
  with_1q st w cs (fun ~re ~im ~size ~bit ~cmask ~cwant ->
      Kernel.kdiag ~re ~im ~size ~bit ~cmask ~cwant ~d0_re:(Cplx.re d0)
        ~d0_im:(Cplx.im d0) ~d1_re:(Cplx.re d1) ~d1_im:(Cplx.im d1))

let apply_phase st angle (cs : Gate.control list) =
  match resolve_controls st cs with
  | None -> ()
  | Some (cmask, cwant) ->
      dirty st;
      Kernel.kphase ~re:st.re ~im:st.im ~size:st.size ~cmask ~cwant ~angle

let gate_matrix name inv : Quipper_math.Mat2.t option =
  let open Quipper_math.Mat2 in
  let m =
    match name with
    | "not" | "X" -> Some pauli_x
    | "Y" -> Some pauli_y
    | "Z" -> Some pauli_z
    | "H" -> Some hadamard
    | "S" -> Some phase_s
    | "T" -> Some phase_t
    | "V" -> Some sqrt_not
    | _ -> None
  in
  match m with
  | None -> None
  | Some m -> Some (if inv then adjoint m else m)

let rot_matrix name angle inv : Quipper_math.Mat2.t option =
  let open Quipper_math.Mat2 in
  let angle = if inv then -.angle else angle in
  match name with
  | "exp(-i%Z)" -> Some (exp_minus_izt angle)
  | "Rz" -> Some (rot_z angle)
  | "Rx" -> Some (rot_x angle)
  | "R" | "Ph" ->
      Some
        (of_rows
           [| [| Quipper_math.Cplx.one; Quipper_math.Cplx.zero |];
              [| Quipper_math.Cplx.zero; Quipper_math.Cplx.cis angle |] |])
  | _ -> None

(** The unitary matrix of a gate (controls excluded), inversion folded
    in: the same construction the dispatch paths use, so fused and
    unfused results differ only by float reassociation, never by matrix
    content. Two-qubit matrices (swap, W) are in the |ab> basis with the
    first target the high bit — the {!Kernel.kswap}/{!Kernel.kw}
    convention. [None] for non-unitaries, unknown names and arity
    mismatches. *)
let gate_unitary (g : Gate.t) : Quipper_math.Mat2.t option =
  let open Quipper_math in
  match g with
  | Gate.Gate { name = "swap"; targets = [ _; _ ]; _ } ->
      (* the permutation |01> <-> |10>; self-inverse *)
      let perm = [| 0; 2; 1; 3 |] in
      Some (Mat2.make 4 (fun r c -> if perm.(c) = r then Cplx.one else Cplx.zero))
  | Gate.Gate { name = "W"; inv; targets = [ _; _ ]; _ } ->
      Some (if inv then Mat2.adjoint Mat2.w_gate else Mat2.w_gate)
  | Gate.Gate { name; inv; targets = [ _ ]; _ } -> gate_matrix name inv
  | Gate.Rot { name; angle; inv; targets = [ _ ]; _ } -> rot_matrix name angle inv
  | _ -> None

(** Run an in-place kernel over the live amplitude prefix (marking the
    zero watermark dirty first) — the bridge the fused-block applier
    ({!Fuse}) uses to reach the raw buffers. *)
let apply_kernel st
    (k : re:float array -> im:float array -> size:int -> unit) =
  dirty st;
  k ~re:st.re ~im:st.im ~size:st.size

(** Measure qubit [w]: Born-rule sample, collapse, move the wire to the
    classical environment. Returns the outcome. The probability sum is
    sequential (ordered float addition), so the sampled outcome is the
    same on any machine and domain count; the elementwise collapse may
    run in parallel. *)
let measure st (w : Wire.t) : bool =
  let p = position st w in
  let mask = 1 lsl p in
  let size = st.size in
  let p1 = Kernel.sum_norm2_half ~re:st.re ~im:st.im ~size ~bit:mask ~want:true in
  st.rng_touched <- true;
  let outcome = Quipper_math.Rng.float st.rng < p1 in
  (* collapse: zero the other branch and renormalise *)
  let keep_prob = if outcome then p1 else 1.0 -. p1 in
  let scale = 1.0 /. sqrt (max keep_prob 1e-300) in
  let re = st.re and im = st.im in
  dirty st;
  Kernel.par_range size (fun lo hi ->
      for i = lo to hi - 1 do
        let bit = i land mask <> 0 in
        if bit <> outcome then begin
          re.(i) <- 0.0;
          im.(i) <- 0.0
        end
        else begin
          re.(i) <- re.(i) *. scale;
          im.(i) <- im.(i) *. scale
        end
      done);
  remove_qubit st w outcome;
  Hashtbl.replace st.cenv w outcome;
  outcome

(** Probability that qubit [w] would measure 1 (no collapse). *)
let prob_one st (w : Wire.t) : float =
  let p = position st w in
  let mask = 1 lsl p in
  Kernel.sum_norm2_half ~re:st.re ~im:st.im ~size:st.size ~bit:mask ~want:true

(* ------------------------------------------------------------------ *)

let apply_gate st (g : Gate.t) =
  match g with
  | Gate.Gate { name = "swap"; inv = _; targets = [ a; b ]; controls } ->
      with_2q st a b controls Kernel.kswap
  | Gate.Gate { name = "W"; inv = _; targets = [ a; b ]; controls } ->
      with_2q st a b controls Kernel.kw
  | Gate.Gate { name; inv; targets = [ t ]; controls } -> (
      match Gate.fast_class g with
      | Gate.Fast_x -> with_1q st t controls Kernel.kx
      | Gate.Fast_y -> with_1q st t controls Kernel.ky
      | Gate.Fast_h -> with_1q st t controls Kernel.kh
      | Gate.Fast_z | Gate.Fast_s _ | Gate.Fast_t _ -> (
          match gate_matrix name inv with
          | Some m -> apply_diag st m t controls
          | None -> assert false (* fast_class only matches known names *))
      | _ -> (
          match gate_matrix name inv with
          | Some m -> apply_1q st m t controls
          | None ->
              Errors.raise_ (Simulation (Fmt.str "statevector: unknown gate %s" name))))
  | Gate.Gate { name; _ } ->
      Errors.raise_ (Simulation (Fmt.str "statevector: unsupported gate %s" name))
  | Gate.Rot { name; angle; inv; targets = [ t ]; controls } -> (
      match (Gate.fast_class g, rot_matrix name angle inv) with
      | Gate.Fast_diag _, Some m -> apply_diag st m t controls
      | _, Some m -> apply_1q st m t controls
      | _, None ->
          Errors.raise_ (Simulation (Fmt.str "statevector: unknown rotation %s" name)))
  | Gate.Rot { name; _ } ->
      Errors.raise_ (Simulation (Fmt.str "statevector: unsupported rotation %s" name))
  | Gate.Phase { angle; controls } -> apply_phase st angle controls
  | Gate.Init { ty = Wire.Q; value; wire } -> add_qubit st wire value
  | Gate.Init { ty = Wire.C; value; wire } -> Hashtbl.replace st.cenv wire value
  | Gate.Term { ty = Wire.Q; value; wire } -> remove_qubit st wire value
  | Gate.Term { ty = Wire.C; value; wire } ->
      let v = read_bit st wire in
      if v <> value then Errors.raise_ (Termination_assertion { wire; expected = value });
      Hashtbl.remove st.cenv wire
  | Gate.Discard { ty = Wire.Q; wire } ->
      (* measure and forget *)
      ignore (measure st wire);
      Hashtbl.remove st.cenv wire
  | Gate.Discard { ty = Wire.C; wire } -> Hashtbl.remove st.cenv wire
  | Gate.Measure { wire } -> ignore (measure st wire)
  | Gate.Cgate { name; out; ins } ->
      let vs = List.map (read_bit st) ins in
      let v =
        match (name, vs) with
        | "not", [ a ] -> not a
        | "xor", vs -> List.fold_left ( <> ) false vs
        | "and", vs -> List.for_all Fun.id vs
        | "or", vs -> List.exists Fun.id vs
        | _ -> Errors.raise_ (Simulation (Fmt.str "unknown classical gate %s" name))
      in
      Hashtbl.replace st.cenv out v
  | Gate.Subroutine { name; _ } ->
      Errors.raise_
        (Simulation (Fmt.str "statevector: subroutine call %s (inline first)" name))
  | Gate.Comment _ -> ()

(* ------------------------------------------------------------------ *)
(* Run functions                                                       *)

(** Execute a circuit-producing function with quantum semantics, gate by
    gate as emitted — Knill's QRAM model (§2.1), including dynamic lifting
    (measurement results can steer circuit generation, §4.3.1). Returns
    the final simulator state and the function's result. *)
let run_fun ?seed ~(in_ : ('b, 'q, 'c) Qdata.t) (input : 'b)
    (f : 'q -> 'r Circ.t) : state * 'r =
  let st = create ?seed () in
  let ctx =
    Circ.create_ctx ~boxing:false ~on_emit:(apply_gate st)
      ~lift:(fun _ w -> read_bit st w)
      ()
  in
  let ins =
    List.map (fun ty -> { Wire.wire = Circ.alloc_input ctx ty; ty }) in_.Qdata.tys
  in
  List.iter2
    (fun (e : Wire.endpoint) v ->
      match e.Wire.ty with
      | Wire.Q -> add_qubit st e.Wire.wire v
      | Wire.C -> Hashtbl.replace st.cenv e.Wire.wire v)
    ins (in_.Qdata.bleaves input);
  let x = in_.Qdata.qbuild ins in
  let r = f x ctx in
  (st, r)

(** Measure every qubit leaf of [q] and read the boolean result. *)
let measure_and_read st (w : ('b, 'q, 'c) Qdata.t) (q : 'q) : 'b =
  let bools =
    List.map
      (fun (e : Wire.endpoint) ->
        match e.Wire.ty with
        | Wire.Q -> measure st e.Wire.wire
        | Wire.C -> read_bit st e.Wire.wire)
      (w.Qdata.qleaves q)
  in
  w.Qdata.bbuild bools

(** Run a generated (hierarchical) circuit on basis-state inputs; returns
    the state with outputs still live. *)
let run_circuit ?seed (b : Circuit.b) (inputs : bool list) : state =
  let flat = Circuit.inline b in
  let st = create ?seed () in
  (if List.length inputs <> List.length flat.Circuit.inputs then
     Errors.raise_ (Shape_mismatch "statevector run: input arity"));
  List.iter2
    (fun (e : Wire.endpoint) v ->
      match e.Wire.ty with
      | Wire.Q -> add_qubit st e.Wire.wire v
      | Wire.C -> Hashtbl.replace st.cenv e.Wire.wire v)
    flat.Circuit.inputs inputs;
  Array.iter (apply_gate st) flat.Circuit.gates;
  st

(* ------------------------------------------------------------------ *)
(* Snapshots: frozen pre-measurement states for many-shot sampling     *)

(** A frozen deep copy of a state: the live amplitude prefix (trimmed to
    [size] — sampling only ever shrinks the register), the wire
    positions and the classical environment. No RNG: each
    {!sample_from} call brings its own. *)
type snapshot = {
  s_re : float array;
  s_im : float array;
  s_n : int;
  s_pos : (Wire.t * int) list;
  s_cenv : (Wire.t, bool) Hashtbl.t;
}

let snapshot st : snapshot option =
  if st.rng_touched then None
  else
    Some
      {
        s_re = Array.sub st.re 0 st.size;
        s_im = Array.sub st.im 0 st.size;
        s_n = st.n;
        s_pos = st.pos;
        s_cenv = Hashtbl.copy st.cenv;
      }

let sample_from (snap : snapshot) ~(rng : Quipper_math.Rng.t)
    (outputs : Wire.endpoint list) : bool list =
  (* A working copy per shot: capacity is exactly the live size (terminal
     measurement only shrinks the register), and the zero watermark
     vouches for nothing — which only forgoes skip optimisations, never
     changes a float. [measure] then replays the same ordered probability
     sums, the same collapse arithmetic and the same RNG draws an
     end-to-end run performs at its outputs, so outcomes are
     bit-identical to [run_circuit] + per-output [measure] at the seed
     [rng] was created from (provided the circuit itself consumed no
     randomness — which is what [snapshot] returning [Some] certifies). *)
  let st =
    {
      re = Array.copy snap.s_re;
      im = Array.copy snap.s_im;
      n = snap.s_n;
      size = Array.length snap.s_re;
      zeros_from = Array.length snap.s_re;
      pos = snap.s_pos;
      cenv = Hashtbl.copy snap.s_cenv;
      rng;
      rng_touched = false;
    }
  in
  List.map
    (fun (e : Wire.endpoint) ->
      match e.Wire.ty with
      | Wire.Q -> measure st e.Wire.wire
      | Wire.C -> read_bit st e.Wire.wire)
    outputs

(** The amplitude of basis state [bits] (little-endian over [wires], which
    must be the live qubits in the order given). *)
let amplitude st (wires : Wire.t list) (bits : bool list) : Quipper_math.Cplx.t =
  if List.length wires <> st.n then
    Errors.raise_ (Simulation "amplitude: must specify all live qubits");
  let idx =
    List.fold_left2
      (fun acc w b -> if b then acc lor (1 lsl position st w) else acc)
      0 wires bits
  in
  Quipper_math.Cplx.make st.re.(idx) st.im.(idx)

(** Output amplitudes of a circuit applied to a basis input, as a function
    from output index (little-endian over the circuit's output arity order)
    to amplitude. For unitary-equality tests on small circuits. *)
let output_vector ?seed (b : Circuit.b) (inputs : bool list) :
    Quipper_math.Cplx.t array =
  let flat = Circuit.inline b in
  let st = run_circuit ?seed b inputs in
  let out_wires =
    List.filter_map
      (fun (e : Wire.endpoint) ->
        match e.Wire.ty with Wire.Q -> Some e.Wire.wire | Wire.C -> None)
      flat.Circuit.outputs
  in
  let n = List.length out_wires in
  if n <> st.n then
    Errors.raise_ (Simulation "output_vector: outputs do not cover live qubits");
  Array.init (1 lsl n)
    (fun i ->
      let bits = List.mapi (fun k _ -> i land (1 lsl k) <> 0) out_wires in
      amplitude st out_wires bits)
