(** Dense statevector simulation: the paper's [run_generic] (§4.4.5) —
    "necessarily inefficient on a classical computer", indispensable for
    validation and for running small algorithm instances.

    Implements the extended circuit model (§4.2): [Init] grows the state,
    assertive [Term] checks that the wire really is disentangled in the
    asserted basis state (raising [Termination_assertion] otherwise —
    catching wrong uncomputation) and shrinks the state, measurements
    collapse probabilistically (seeded) and move the wire to a classical
    environment consulted by classically-controlled gates.

    {2 Internal qubit ordering}

    The state is a dense vector of [2^n] complex amplitudes for [n] live
    qubits, held as two unboxed float arrays (real and imaginary parts).
    Each live qubit has an {e index}: a bit position in the amplitude's
    array index, exposed by {!qubit_index}. A freshly initialised qubit
    always takes the highest position [n]; terminating or measuring a
    qubit shifts every higher position down by one. So indices are {e not}
    stable across [Init]/[Term] — query {!qubit_index} at the moment you
    need it, and interpret {!amplitudes}[(i)] as the basis state whose
    qubit [w] has value [(i lsr qubit_index st w) land 1].

    The amplitude buffers are capacity-managed: they grow geometrically,
    never shrink, and [Init]/[Term]/[measure] update them in place, so
    ancilla churn does not allocate once the high-water mark is reached.
    Gate application dispatches on {!Quipper.Gate.fast_class} to the
    specialised kernels in {!Kernel} and falls back to generic matrix
    application; results are bit-for-bit those of the {!Reference} seed
    engine, and probability reductions are sequential so sampled outcomes
    never depend on the machine or domain count. *)

open Quipper

val max_qubits : int
(** Hard cap on live qubits (25: 32M amplitudes, 512 MB). *)

type state

val create : ?seed:int -> unit -> state
val num_qubits : state -> int

val capacity : state -> int
(** Allocated length of the amplitude buffers (>= [2^num_qubits]); grows
    geometrically and never shrinks. Exposed for the capacity tests. *)

val qubit_index : state -> Wire.t -> int
(** Bit position of a live qubit in the amplitude index (see the ordering
    note above). Raises [Simulation _] if [w] is not a live qubit. *)

val read_bit : state -> Wire.t -> bool
(** Value of a classical wire. *)

val set_bit : state -> Wire.t -> bool -> unit
(** Overwrite a classical wire's value. The noise channels use this to
    model measurement readout errors. *)

val amplitudes : state -> Quipper_math.Cplx.t array
(** Copy of the live amplitude vector (length [2^num_qubits]), indexed in
    the simulator's internal qubit order. Used by equality-to-the-bit
    tests (e.g. that a zero-probability noise configuration perturbs
    nothing). *)

val probabilities : state -> float array
(** [norm2] of each amplitude, same indexing as {!amplitudes}. *)

val prob_one : state -> Wire.t -> float
(** Probability that the qubit would measure 1 (no collapse). *)

val measure : state -> Wire.t -> bool
(** Born-rule sample; collapses; the wire becomes classical. *)

val apply_gate : state -> Gate.t -> unit

(** {2 Fusion hooks}

    The bridge the gate-fusion compiler ({!Fuse}) is built on: matrix
    semantics, control resolution and raw-buffer kernel access, exposed
    so fused blocks go through exactly the same constructions as the
    per-gate dispatch. *)

val gate_unitary : Gate.t -> Quipper_math.Mat2.t option
(** The unitary matrix of a [Gate]/[Rot] (controls excluded), inversion
    folded in — the same matrices the dispatch paths use. Two-qubit
    matrices (swap, W) are in the |ab> basis with the first target the
    high bit. [None] for non-unitaries, unknown names and arity
    mismatches. *)

val resolve_controls : state -> Gate.control list -> (int * int) option
(** Fold a control list into one (mask, want) pair over amplitude-index
    bits; classical controls are evaluated against the classical
    environment immediately. [None] means a classical control is
    unsatisfied: skip the gate. *)

val apply_kernel :
  state -> (re:float array -> im:float array -> size:int -> unit) -> unit
(** Run an in-place kernel over the live amplitude prefix; the zero
    watermark is invalidated first. The kernel must only write within
    [0, size). *)

val run_fun :
  ?seed:int -> in_:('b, 'q, 'c) Qdata.t -> 'b -> ('q -> 'r Circ.t) -> state * 'r
(** Execute a circuit-producing function gate by gate as emitted —
    Knill's QRAM model (§2.1), including dynamic lifting (§4.3.1). *)

val measure_and_read : state -> ('b, 'q, 'c) Qdata.t -> 'q -> 'b
(** Measure every qubit leaf and read the boolean result. *)

val run_circuit : ?seed:int -> Circuit.b -> bool list -> state
(** Run a generated (hierarchical) circuit on basis-state inputs. *)

(** {2 Snapshots}

    Many-shot sampling support (the shot service): freeze the
    pre-measurement state once, then replay terminal measurements from
    the frozen copy under per-shot RNGs at marginal cost O(2^n) per
    shot — no rebuild, no re-simulation. *)

type snapshot
(** A frozen deep copy of a state (amplitudes trimmed to the live
    prefix, wire positions, classical environment). Immutable:
    unaffected by further use of the source state, shareable across
    domains. *)

val snapshot : state -> snapshot option
(** [None] when a measurement has already consumed from the state's
    RNG: the state then depends on the seed, so no frozen copy could
    reproduce what an end-to-end run at a {e different} seed would
    produce. While no randomness was consumed, the law holds: for every
    seed [s], [sample_from (snapshot st) ~rng:(Rng.create s) outs] is
    bit-identical to running the same circuit end-to-end with [~seed:s]
    and measuring [outs] in order. *)

val sample_from :
  snapshot -> rng:Quipper_math.Rng.t -> Wire.endpoint list -> bool list
(** Draw one shot: copy the snapshot into a working state owning [rng],
    then measure each [Q] output and read each [C] output in order —
    the same ordered probability sums, collapse arithmetic and RNG
    draws an end-to-end run performs at its outputs. *)

val amplitude : state -> Wire.t list -> bool list -> Quipper_math.Cplx.t
(** Amplitude of a basis state; the wire list must cover all live qubits. *)

val output_vector : ?seed:int -> Circuit.b -> bool list -> Quipper_math.Cplx.t array
(** Output amplitudes of a circuit on a basis input, indexed little-endian
    over the output arity — the workhorse of semantics-equality tests. *)
