open Quipper
module Sim = Quipper_sim.Statevector

let try_one name (circ : Wire.bit array Circ.t) =
  let st = Sim.create ~seed:42 () in
  let sink = Sink.unbox (Sink.make ~on_gate:(Sim.apply_gate st) ~finish:(fun _ -> ()) ()) in
  (try
     let (), bits = Circ.run_streaming_unit circ sink in
     let s = Array.to_list bits |> List.map (fun w -> if Sim.read_bit st (Wire.bit_wire w) then "1" else "0") |> String.concat "" in
     Printf.printf "%s OK: %s\n%!" name s
   with e -> Printf.printf "%s FAILED: %s\n%!" name (Printexc.to_string e))

let () =
  let p = { Algo_bwt.n = 2; s = 1; dt = Algo_bwt.default_params.Algo_bwt.dt } in
  try_one "orthodox" (Algo_bwt.whole ~p (Algo_bwt.orthodox_oracle p));
  try_one "template" (Algo_bwt.whole ~p (Algo_bwt.template_oracle p));
  try_one "qcl" (Qcl_baseline.Bwt_qcl.whole ~p)

let () =
  let p = { Algo_bwt.n = 2; s = 1; dt = Algo_bwt.default_params.Algo_bwt.dt } in
  print_endline "second runs:";
  let c = Qcl_baseline.Bwt_qcl.whole ~p in
  try_one "qcl-a" c;
  try_one "qcl-b" c;
  try_one "qcl-fresh" (Qcl_baseline.Bwt_qcl.whole ~p)
