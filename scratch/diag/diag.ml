open Quipper
open Circ
module Gen = Quipper_testgen.Gen
module Backend = Quipper_sim.Backend
module Sv = Quipper_sim.Statevector
module Fuse = Quipper_sim.Fuse

let max_dev a b =
  let open Quipper_math in
  let d = ref 0.0 in
  Array.iteri (fun i x ->
      let e = Cplx.norm (Cplx.sub x b.(i)) in
      if e > !d then d := e) a;
  !d

let boxed_fun ops ql =
  match ql with
  | [ a; b; c; d ] ->
      let shape2 = Qdata.list_of 2 Qdata.qubit in
      let call xs = box "body" ~in_:shape2 ~out:shape2 (Gen.program_fun ops) xs in
      let* ab = call [ a; b ] in
      let a, b = (List.nth ab 0, List.nth ab 1) in
      let* cd = with_controls [ ctl a ] (call [ c; d ]) in
      let c, d = (List.nth cd 0, List.nth cd 1) in
      let* b =
        with_computed (call [ c; d ]) (fun cd' ->
            let* () = cnot ~control:(List.hd cd') ~target:b in
            return b)
      in
      let* ab = call [ a; b ] in
      let a, b = (List.nth ab 0, List.nth ab 1) in
      return [ a; b; c; d ]
  | _ -> assert false

let try_ops name ops inputs =
  let shape = Qdata.list_of 4 Qdata.qubit in
  let b, _ = Circ.generate ~in_:shape (boxed_fun ops) in
  let sv = Sv.run_circuit ~seed:5 b inputs in
  let reference = Sv.amplitudes sv in
  let fu = Fuse.run_circuit ~seed:5 b inputs in
  let st = Fuse.stats fu in
  let nocache = { Fuse.default_config with Fuse.cache = false } in
  let fu2 = Fuse.run_circuit ~config:nocache ~seed:5 b inputs in
  Printf.printf "%s: cached dev=%.3e nocache dev=%.3e replayed=%d compiled=%d\n%!"
    name (max_dev reference (Fuse.amplitudes fu))
    (max_dev reference (Fuse.amplitudes fu2))
    st.Fuse.calls_replayed st.Fuse.boxes_compiled

let () =
  try_ops "empty" [] [true; false; true; false];
  try_ops "h0" [ Gen.H 0 ] [true; false; true; false];
  try_ops "x0" [ Gen.X 0 ] [true; false; true; false];
  try_ops "t0" [ Gen.T 0 ] [true; false; true; false];
  try_ops "cnot" [ Gen.CNot (0,1) ] [true; false; true; false];
  try_ops "swap" [ Gen.Swap (0,1) ] [true; true; false; false];
  try_ops "h+cnot" [ Gen.H 0; Gen.CNot (0,1) ] [true; false; true; false];
  try_ops "anc" [ Gen.Ancilla_block (0, [ Gen.H 1 ]) ] [true; false; true; false];
  try_ops "ctrlblk" [ Gen.Controlled_block (0, [ Gen.H 1 ]) ] [true; false; true; false]
