(* Calibrate fusion cost model: time each kernel class on a 2^20 state. *)
module K = Quipper_sim.Kernel

let () =
  K.num_domains := 1;
  let n = 20 in
  let size = 1 lsl n in
  let re = Array.init size (fun i -> 1.0 /. float (i + 1))
  and im = Array.init size (fun i -> 0.5 /. float (i + 1)) in
  let time name f =
    let reps = 20 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do f () done;
    let dt = (Unix.gettimeofday () -. t0) /. float reps in
    Printf.printf "%-22s %8.3f ms\n%!" name (dt *. 1000.0)
  in
  time "kx (X, no ctrl)" (fun () -> K.kx ~re ~im ~size ~bit:(1 lsl 3) ~cmask:0 ~cwant:0);
  time "kx (CNOT)" (fun () -> K.kx ~re ~im ~size ~bit:(1 lsl 3) ~cmask:(1 lsl 7) ~cwant:(1 lsl 7));
  time "kx (Toffoli)" (fun () -> K.kx ~re ~im ~size ~bit:(1 lsl 3) ~cmask:((1 lsl 7) lor (1 lsl 11)) ~cwant:((1 lsl 7) lor (1 lsl 11)));
  time "kh (H)" (fun () -> K.kh ~re ~im ~size ~bit:(1 lsl 3) ~cmask:0 ~cwant:0);
  time "kdiag (T)" (fun () -> K.kdiag ~re ~im ~size ~bit:(1 lsl 3) ~cmask:0 ~cwant:0 ~d0_re:1.0 ~d0_im:0.0 ~d1_re:0.7 ~d1_im:0.7);
  time "kdiag (CZ-ish)" (fun () -> K.kdiag ~re ~im ~size ~bit:(1 lsl 3) ~cmask:(1 lsl 7) ~cwant:(1 lsl 7) ~d0_re:1.0 ~d0_im:0.0 ~d1_re:(-1.0) ~d1_im:0.0);
  let mk k =
    let d = 1 lsl k in
    (Array.init k (fun i -> 1 lsl (3 + 4 * i)),
     Array.init (d * d) (fun i -> if i mod (d + 1) = 0 then 1.0 else 0.01),
     Array.make (d * d) 0.001)
  in
  List.iter (fun k ->
      let bits, mre, mim = mk k in
      time (Printf.sprintf "kq_generic k=%d" k)
        (fun () -> K.kq_generic ~re ~im ~size ~bits ~cmask:0 ~cwant:0 ~mre ~mim))
    [ 1; 2; 3; 4 ];
  List.iter (fun k ->
      let d = 1 lsl k in
      let bits = Array.init k (fun i -> 1 lsl (2 + 2 * i)) in
      let dre = Array.init d (fun i -> 1.0 /. float (i + 1)) and di = Array.make d 0.01 in
      time (Printf.sprintf "kq_diag k=%d" k)
        (fun () -> K.kq_diag ~re ~im ~size ~bits ~cmask:0 ~cwant:0 ~dre ~di))
    [ 2; 4; 6; 8 ]
