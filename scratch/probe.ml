let () =
  let p = { Algo_bwt.default_params with Algo_bwt.n = 2; s = 1 } in
  let b = Algo_bwt.generate ~p ~which:`Orthodox () in
  Printf.printf "bwt n=2 s=1 orthodox: peak %d, gates %d\n"
    (Quipper.Gatecount.peak_wires b) (Quipper.Gatecount.total (Quipper.Gatecount.aggregate b));
  let p = { Algo_bwt.default_params with Algo_bwt.n = 3; s = 1 } in
  let b = Algo_bwt.generate ~p ~which:`Orthodox () in
  Printf.printf "bwt n=3 s=1 orthodox: peak %d, gates %d\n"
    (Quipper.Gatecount.peak_wires b) (Quipper.Gatecount.total (Quipper.Gatecount.aggregate b));
  let tp = { Algo_tf.Oracle.l = 2; n = 2; r = 1 } in
  let b = Algo_tf.Qwtfp.generate_pow17 ~p:tp () in
  Printf.printf "tf pow17 l=2: peak %d, gates %d, inputs %d\n"
    (Quipper.Gatecount.peak_wires b) (Quipper.Gatecount.total (Quipper.Gatecount.aggregate b))
    (List.length b.Quipper.Circuit.main.Quipper.Circuit.inputs);
  let tp = { Algo_tf.Oracle.l = 3; n = 2; r = 1 } in
  let b = Algo_tf.Qwtfp.generate_pow17 ~p:tp () in
  Printf.printf "tf pow17 l=3: peak %d, gates %d\n"
    (Quipper.Gatecount.peak_wires b) (Quipper.Gatecount.total (Quipper.Gatecount.aggregate b))
