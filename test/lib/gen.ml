(* Random circuit-program generators shared by the property-test suites
   (the [quipper_testgen] library).

   A generated "program" is a reversible circuit-producing function on a
   fixed register of qubits: a sequence of primitive unitary operations,
   ancilla blocks, controlled blocks and compute/uncompute sandwiches —
   enough structural variety to exercise the builder, reversal,
   decomposition, counting, streaming and the simulators, while staying
   unitary so every whole-circuit operator applies.

   Program generators take size parameters (op-count range, block
   nesting depth) with the historical defaults; [sample] draws one value
   deterministically from an integer seed for non-QCheck harnesses. *)

open Quipper
open Circ

type op =
  | H of int
  | X of int
  | T of int
  | S of int
  | CNot of int * int
  | Toffoli of int * bool * int * bool * int (* (c1, sign1, c2, sign2, target) *)
  | Swap of int * int
  | Rz of int * float
  | Rx of int * float
  | GPhase of float (* observable only under controls *)
  | Controlled_block of int * op list
  | Ancilla_block of int * op list (* control index for a CNOT onto the ancilla *)

let rec op_gen ~n ~depth : op QCheck2.Gen.t =
  let open QCheck2.Gen in
  let idx = int_range 0 (n - 1) in
  let distinct2 =
    pair idx idx >|= fun (a, b) -> (a, if b = a then (b + 1) mod n else b)
  in
  let distinct3 =
    triple idx idx idx >|= fun (a, b, c) ->
    let b = if b = a then (b + 1) mod n else b in
    let c = if c = a || c = b then (max a b + 1) mod n else c in
    let c = if c = a || c = b then (c + 1 + max a b) mod n else c in
    (a, b, c)
  in
  let base =
    [
      (3, idx >|= fun i -> H i);
      (3, idx >|= fun i -> X i);
      (2, idx >|= fun i -> T i);
      (2, idx >|= fun i -> S i);
      (3, distinct2 >|= fun (a, b) -> CNot (a, b));
      (2, distinct2 >|= fun (a, b) -> Swap (a, b));
      ( 2,
        pair distinct3 (pair bool bool) >|= fun ((a, b, c), (s1, s2)) ->
        Toffoli (a, s1, b, s2, c) );
    ]
  in
  let recursive =
    if depth <= 0 then []
    else
      [
        ( 1,
          pair idx (list_size (int_range 1 4) (op_gen ~n ~depth:(depth - 1)))
          >|= fun (c, ops) -> Controlled_block (c, ops) );
        ( 1,
          pair idx (list_size (int_range 1 3) (op_gen ~n ~depth:(depth - 1)))
          >|= fun (c, ops) -> Ancilla_block (c, ops) );
      ]
  in
  frequency (base @ recursive)

let program_gen ?(min_ops = 1) ?(max_ops = 15) ?(depth = 2) ~n () : op list QCheck2.Gen.t =
  QCheck2.Gen.(list_size (int_range min_ops max_ops) (op_gen ~n ~depth))

(* The angle-bearing extension: the general mix plus Z/X rotations and
   global phases at arbitrary angles — the circuits parameter sweeps are
   made of. A separate generator so the angle-free suites keep their
   historical distributions (and shrink traces). *)
let rec rot_op_gen ~n ~depth : op QCheck2.Gen.t =
  let open QCheck2.Gen in
  let idx = int_range 0 (n - 1) in
  let angle = float_range (-1.5) 1.5 in
  let recursive =
    if depth <= 0 then []
    else
      [
        ( 1,
          pair idx (list_size (int_range 1 4) (rot_op_gen ~n ~depth:(depth - 1)))
          >|= fun (c, ops) -> Controlled_block (c, ops) );
      ]
  in
  frequency
    ([
       (2, op_gen ~n ~depth:0);
       (3, pair idx angle >|= fun (i, a) -> Rz (i, a));
       (2, pair idx angle >|= fun (i, a) -> Rx (i, a));
       (1, angle >|= fun a -> GPhase a);
     ]
    @ recursive)

let rot_program_gen ?(min_ops = 1) ?(max_ops = 15) ?(depth = 2) ~n () :
    op list QCheck2.Gen.t =
  QCheck2.Gen.(list_size (int_range min_ops max_ops) (rot_op_gen ~n ~depth))

(* Restricted op generators for the differential-simulation harness:
   each simulator pair is exercised on the fragment of the gate set both
   sides implement. *)

(* Basis-state-preserving ops (any controls allowed): the classical
   simulator's whole world. Blocks stay in the subset recursively. *)
let rec classical_op_gen ~n ~depth : op QCheck2.Gen.t =
  let open QCheck2.Gen in
  let idx = int_range 0 (n - 1) in
  let distinct2 =
    pair idx idx >|= fun (a, b) -> (a, if b = a then (b + 1) mod n else b)
  in
  let distinct3 =
    triple idx idx idx >|= fun (a, b, c) ->
    let b = if b = a then (b + 1) mod n else b in
    let c = if c = a || c = b then (max a b + 1) mod n else c in
    let c = if c = a || c = b then (c + 1 + max a b) mod n else c in
    (a, b, c)
  in
  let base =
    [
      (3, idx >|= fun i -> X i);
      (3, distinct2 >|= fun (a, b) -> CNot (a, b));
      (2, distinct2 >|= fun (a, b) -> Swap (a, b));
      ( 2,
        pair distinct3 (pair bool bool) >|= fun ((a, b, c), (s1, s2)) ->
        Toffoli (a, s1, b, s2, c) );
    ]
  in
  let recursive =
    if depth <= 0 then []
    else
      [
        ( 1,
          pair idx (list_size (int_range 1 4) (classical_op_gen ~n ~depth:(depth - 1)))
          >|= fun (c, ops) -> Controlled_block (c, ops) );
        ( 1,
          pair idx (list_size (int_range 1 3) (classical_op_gen ~n ~depth:(depth - 1)))
          >|= fun (c, ops) -> Ancilla_block (c, ops) );
      ]
  in
  frequency (base @ recursive)

let classical_program_gen ?(min_ops = 1) ?(max_ops = 15) ?(depth = 2) ~n () :
    op list QCheck2.Gen.t =
  QCheck2.Gen.(list_size (int_range min_ops max_ops) (classical_op_gen ~n ~depth))

(* Flat Clifford ops (H, S, X, CNOT, swap). No blocks: an extra control
   on a CNOT would leave the Clifford group. *)
let clifford_op_gen ~n : op QCheck2.Gen.t =
  let open QCheck2.Gen in
  let idx = int_range 0 (n - 1) in
  let distinct2 =
    pair idx idx >|= fun (a, b) -> (a, if b = a then (b + 1) mod n else b)
  in
  frequency
    [
      (3, idx >|= fun i -> H i);
      (2, idx >|= fun i -> X i);
      (2, idx >|= fun i -> S i);
      (3, distinct2 >|= fun (a, b) -> CNot (a, b));
      (1, distinct2 >|= fun (a, b) -> Swap (a, b));
    ]

let clifford_program_gen ?(min_ops = 1) ?(max_ops = 25) ~n () : op list QCheck2.Gen.t =
  QCheck2.Gen.(list_size (int_range min_ops max_ops) (clifford_op_gen ~n))

(* The classical ∩ Clifford fragment: wire permutations and parity
   (X, CNOT, swap) — runnable on all three simulators at once. *)
let permutation_op_gen ~n : op QCheck2.Gen.t =
  let open QCheck2.Gen in
  let idx = int_range 0 (n - 1) in
  let distinct2 =
    pair idx idx >|= fun (a, b) -> (a, if b = a then (b + 1) mod n else b)
  in
  frequency
    [
      (2, idx >|= fun i -> X i);
      (3, distinct2 >|= fun (a, b) -> CNot (a, b));
      (1, distinct2 >|= fun (a, b) -> Swap (a, b));
    ]

let permutation_program_gen ?(min_ops = 1) ?(max_ops = 25) ~n () : op list QCheck2.Gen.t =
  QCheck2.Gen.(list_size (int_range min_ops max_ops) (permutation_op_gen ~n))

(** Draw one value from a generator, deterministically from [seed] — the
    seeded interface for harnesses (benchmarks, fault campaigns, shell
    drivers) that are not QCheck properties. *)
let sample ?(seed = 0) (g : 'a QCheck2.Gen.t) : 'a =
  QCheck2.Gen.generate1 ~rand:(Random.State.make [| 0x5eed; seed |]) g

(* distinctness after the mod arithmetic is not guaranteed; filter when
   interpreting *)
let rec interp (qs : Wire.qubit array) (o : op) : unit Circ.t =
  let n = Array.length qs in
  let ok3 a b c = a <> b && b <> c && a <> c in
  match o with
  | H i -> hadamard_ qs.(i mod n)
  | X i -> qnot_ qs.(i mod n)
  | T i ->
      let* _ = gate_T qs.(i mod n) in
      return ()
  | S i ->
      let* _ = gate_S qs.(i mod n) in
      return ()
  | CNot (a, b) ->
      let a = a mod n and b = b mod n in
      if a <> b then cnot ~control:qs.(a) ~target:qs.(b) else return ()
  | Swap (a, b) ->
      let a = a mod n and b = b mod n in
      if a <> b then swap qs.(a) qs.(b) else return ()
  | Toffoli (a, s1, b, s2, c) ->
      let a = a mod n and b = b mod n and c = c mod n in
      if ok3 a b c then
        qnot_ qs.(c)
        |> controlled
             [ (if s1 then ctl qs.(a) else ctl_neg qs.(a));
               (if s2 then ctl qs.(b) else ctl_neg qs.(b)) ]
      else return ()
  | Rz (i, a) -> rot_Z a qs.(i mod n)
  | Rx (i, a) -> rot_X a qs.(i mod n)
  | GPhase a -> global_phase a
  | Controlled_block (c, ops) ->
      let c = c mod n in
      (* avoid self-controls: restrict the block to the other wires *)
      let others = Array.of_list (List.filteri (fun i _ -> i <> c) (Array.to_list qs)) in
      if Array.length others = 0 then return ()
      else with_controls [ ctl qs.(c) ] (iterm (interp others) ops)
  | Ancilla_block (c, ops) ->
      let c = c mod n in
      with_ancilla (fun anc ->
          let* () = cnot ~control:qs.(c) ~target:anc in
          let extended = Array.append qs [| anc |] in
          let* () = iterm (interp extended) ops in
          (* undo everything acting on the ancilla so it terminates at |0>:
             replay the ops in reverse via the library reversal *)
          let* _ =
            reverse_fun
              ~in_:(Qdata.list_of (Array.length extended) Qdata.qubit)
              ~out:(Qdata.list_of (Array.length extended) Qdata.qubit)
              (fun ql ->
                let arr = Array.of_list ql in
                let* () = iterm (interp arr) ops in
                return (Array.to_list arr))
              (Array.to_list extended)
          in
          cnot ~control:qs.(c) ~target:anc)

let program (ops : op list) (qs : Wire.qubit array) : unit Circ.t =
  iterm (interp qs) ops

(** The program as a circuit-producing function on the input register —
    the thing both [Circ.generate] and [Circ.run_streaming] can run, so
    differential streaming tests drive the identical computation. *)
let program_fun (ops : op list) (ql : Wire.qubit list) : Wire.qubit list Circ.t =
  let qs = Array.of_list ql in
  let* () = program ops qs in
  return ql

(** Generate the circuit of a random program on [n] qubits. *)
let circuit_of_program ~n (ops : op list) : Circuit.b =
  let b, _ = Circ.generate ~in_:(Qdata.list_of n Qdata.qubit) (program_fun ops) in
  b

(** The circuit of [ops] followed by its library-generated reverse: maps
    every basis input to itself, in any correct simulator — the
    differential harness's deterministic observable. *)
let roundtrip_circuit_of_program ~n (ops : op list) : Circuit.b =
  let w = Qdata.list_of n Qdata.qubit in
  let prog ql =
    let qs = Array.of_list ql in
    let* () = program ops qs in
    return (Array.to_list qs)
  in
  let b, _ =
    Circ.generate ~in_:w (fun ql ->
        let* ql = prog ql in
        reverse_simple w prog ql)
  in
  b
