(* Tests for the ancilla-pool wire allocator (paper 4.2.1's
   register-allocation phase). *)

open Quipper
module Gen = Quipper_testgen.Gen
open Circ
module Sv = Quipper_sim.Statevector

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_sequential_ancillas_share_id () =
  (* two ancillas used one after the other must land on the same physical
     wire — the paper's "it does not actually matter whether the two later
     ancillas are 'equal' to the earlier ancillas" *)
  let b, _ =
    Circ.generate ~in_:Qdata.qubit (fun q ->
        let* () = with_ancilla (fun a -> cnot ~control:q ~target:a >> cnot ~control:q ~target:a) in
        let* () = with_ancilla (fun a -> cnot ~control:q ~target:a >> cnot ~control:q ~target:a) in
        return q)
  in
  let c = Allocate.compact_circuit b.Circuit.main in
  Circuit.validate c;
  checki "width = 2 (input + one pooled ancilla)" 2 (Allocate.width_of c);
  checki "width before compaction was 3" 3 (Allocate.width_of b.Circuit.main)

let test_width_equals_peak () =
  let p = { Algo_tf.Oracle.l = 4; n = 3; r = 2 } in
  let b = Algo_tf.Qwtfp.generate_pow17 ~p () in
  let flat = Circuit.inline b in
  let compacted = Allocate.compact_circuit flat in
  Circuit.validate compacted;
  checki "compacted width = hierarchical peak"
    (Gatecount.peak_wires b)
    (Allocate.width_of compacted)

let test_semantics_preserved () =
  let b, _ =
    Circ.generate ~in_:(Qdata.list_of 3 Qdata.qubit) (fun qs ->
        let qs = Array.of_list qs in
        let* () = hadamard_ qs.(0) in
        let* () = with_ancilla (fun a ->
            let* () = cnot ~control:qs.(0) ~target:a in
            let* () = cnot ~control:a ~target:qs.(1) in
            cnot ~control:qs.(0) ~target:a)
        in
        let* _ = gate_T qs.(2) in
        let* () = with_ancilla (fun a ->
            let* () = toffoli ~c1:qs.(1) ~c2:qs.(2) ~target:a in
            let* () = cnot ~control:a ~target:qs.(0) in
            toffoli ~c1:qs.(1) ~c2:qs.(2) ~target:a)
        in
        return (Array.to_list qs))
  in
  let c = Allocate.compact b in
  Circuit.validate_b c;
  for v = 0 to 7 do
    let ins = [ v land 1 = 1; v land 2 = 2; v land 4 = 4 ] in
    let v1 = Sv.output_vector b ins and v2 = Sv.output_vector c ins in
    check "amplitudes equal" true
      (Array.for_all2 (fun a b -> Quipper_math.Cplx.equal ~eps:1e-9 a b) v1 v2)
  done

let test_counts_invariant () =
  let p = { Algo_tf.Oracle.l = 4; n = 3; r = 2 } in
  let b = Algo_tf.Qwtfp.generate_pow17 ~p () in
  let c = Allocate.compact b in
  Circuit.validate_b c;
  check "gate counts unchanged" true
    (Gatecount.Counts.equal ( = ) (Gatecount.aggregate b) (Gatecount.aggregate c));
  checki "peak unchanged" (Gatecount.peak_wires b) (Gatecount.peak_wires c)

let prop_compaction_valid =
  QCheck2.Test.make ~name:"compaction of random circuits is valid and tight"
    ~count:60 (Gen.program_gen ~n:4 ())
    (fun ops ->
      let b = Gen.circuit_of_program ~n:4 ops in
      let flat = Circuit.inline b in
      let c = Allocate.compact_circuit flat in
      Circuit.validate c;
      (* tightness: width equals the live peak of the flat circuit *)
      let peak = Gatecount.peak_wires (Circuit.of_main flat) in
      Allocate.width_of c = peak)

let prop_compaction_semantics =
  QCheck2.Test.make ~name:"compaction preserves semantics" ~count:30
    (Gen.program_gen ~n:3 ())
    (fun ops ->
      let b = Gen.circuit_of_program ~n:3 ops in
      let c = Allocate.compact b in
      List.for_all
        (fun v ->
          let ins = [ v land 1 = 1; v land 2 = 2; v land 4 = 4 ] in
          let v1 = Sv.output_vector b ins and v2 = Sv.output_vector c ins in
          Array.for_all2 (fun a b -> Quipper_math.Cplx.equal ~eps:1e-9 a b) v1 v2)
        [ 0; 3; 5; 7 ])

let suite =
  [
    Alcotest.test_case "sequential ancillas pooled" `Quick test_sequential_ancillas_share_id;
    Alcotest.test_case "width = peak" `Quick test_width_equals_peak;
    Alcotest.test_case "semantics preserved" `Quick test_semantics_preserved;
    Alcotest.test_case "counts invariant" `Quick test_counts_invariant;
    QCheck_alcotest.to_alcotest prop_compaction_valid;
    QCheck_alcotest.to_alcotest prop_compaction_semantics;
  ]
