(* Tests for the unified simulator interface (Quipper_sim.Backend), the
   fast statevector engine's bit-for-bit agreement with the preserved
   seed engine (Quipper_sim.Reference), the capacity-managed amplitude
   buffers, and cross-backend fault-injection campaigns. *)

open Quipper
module Gen = Quipper_testgen.Gen
open Circ
module Backend = Quipper_sim.Backend
module Sv = Quipper_sim.Statevector
module Ref = Quipper_sim.Reference
module Cs = Quipper_sim.Classical
module Inject = Quipper_sim.Inject
module Cplx = Quipper_math.Cplx

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Bit-for-bit agreement with the seed engine                          *)

(* Ancilla-heavy programs: the in-place Init/Term surgery is the part of
   the fast engine with no counterpart in the seed, so the generator
   leans hard on [Ancilla_block] (nested blocks allocate several deep). *)
let ancilla_heavy_gen ~n =
  QCheck2.Gen.(
    list_size (int_range 1 8)
      (frequency
         [
           (2, Gen.op_gen ~n ~depth:2);
           ( 3,
             pair (int_range 0 (n - 1))
               (list_size (int_range 1 3) (Gen.op_gen ~n ~depth:1))
             >|= fun (c, ops) -> Gen.Ancilla_block (c, ops) );
         ]))

(* Polymorphic [=] on the amplitude arrays is the point: the fast
   kernels must reproduce the seed's floats exactly (signed zeros
   compare equal under IEEE [=], which is the equivalence we mean). *)
let prop_inplace_matches_reference =
  let n = 4 in
  QCheck2.Test.make
    ~name:"statevector: in-place Init/Term bit-for-bit equals seed engine"
    ~count:200
    QCheck2.Gen.(pair (ancilla_heavy_gen ~n) (list_repeat n bool))
    (fun (ops, inputs) ->
      let b = Gen.circuit_of_program ~n ops in
      let st = Sv.run_circuit ~seed:3 b inputs in
      let rst = Ref.run_circuit ~seed:3 b inputs in
      Sv.num_qubits st = Ref.num_qubits rst
      && Sv.amplitudes st = Ref.amplitudes rst
      && List.for_all
           (fun (e : Wire.endpoint) ->
             match e.Wire.ty with
             | Wire.Q ->
                 Sv.qubit_index st e.Wire.wire = Ref.qubit_index rst e.Wire.wire
             | Wire.C -> Sv.read_bit st e.Wire.wire = Ref.read_bit rst e.Wire.wire)
           b.Circuit.main.Circuit.outputs)

(* ------------------------------------------------------------------ *)
(* Capacity management                                                 *)

let test_capacity_growth () =
  (* grow to 6 live qubits: capacity must reach 2^6 = 64 *)
  let st, _ =
    Sv.run_fun ~seed:1 ~in_:Qdata.qubit false (fun q ->
        let rec alloc k acc =
          if k = 0 then return acc
          else
            let* a = qinit_bit false in
            alloc (k - 1) (a :: acc)
        in
        let rec free = function
          | [] -> return ()
          | a :: rest ->
              let* () = qterm_bit false a in
              free rest
        in
        let* ancs = alloc 5 [] in
        let* () = free ancs in
        return q)
  in
  check "one live qubit at the end" true (Sv.num_qubits st = 1);
  check "capacity reached the high-water mark" true (Sv.capacity st >= 64);
  check "capacity did not shrink on Term" true (Sv.capacity st >= 64)

let test_capacity_retention_under_churn () =
  (* ancilla churn within the high-water mark must not change capacity:
     that is the whole point of the in-place engine *)
  let st, _ =
    Sv.run_fun ~seed:1 ~in_:Qdata.qubit false (fun q ->
        let* () =
          with_ancilla_init [ false; false; false; false ] (fun _ -> return ())
        in
        return q)
  in
  let cap = Sv.capacity st in
  check "high-water capacity" true (cap >= 32);
  (* churn directly on the live state: fresh wire ids, Init/Term pairs *)
  for w = 1_000 to 1_050 do
    Sv.apply_gate st (Gate.Init { ty = Wire.Q; value = false; wire = w });
    Sv.apply_gate st
      (Gate.Gate { name = "X"; inv = false; targets = [ w ]; controls = [] });
    Sv.apply_gate st (Gate.Term { ty = Wire.Q; value = true; wire = w })
  done;
  check "churn within capacity allocates nothing" true (Sv.capacity st = cap)

(* ------------------------------------------------------------------ *)
(* The Backend contract                                                *)

let test_backend_find () =
  List.iter
    (fun name ->
      let (module B : Backend.S) = Backend.find name in
      check ("find " ^ name) true (B.name = name))
    [ "classical"; "clifford"; "statevector" ];
  match Backend.find "analog" with
  | exception Errors.Error (Errors.Simulation _) -> ()
  | _ -> Alcotest.fail "expected find to reject an unknown backend"

let test_observation_equality () =
  let h = 1.0 /. sqrt 2.0 in
  let plus = [| Cplx.make h 0.0; Cplx.make h 0.0 |] in
  let iplus = [| Cplx.make 0.0 h; Cplx.make 0.0 h |] in
  let minus = [| Cplx.make h 0.0; Cplx.make (-.h) 0.0 |] in
  check "global phase i is equal" true (Backend.equal_up_to_phase plus iplus);
  check "relative phase is not" false (Backend.equal_up_to_phase plus minus);
  check "amplitude observations use phase equivalence" true
    (Backend.equal_observation (Obs_amplitudes plus) (Obs_amplitudes iplus));
  check "cross-kind observations never compare equal" false
    (Backend.equal_observation (Obs_bits []) (Obs_tableau ""));
  check "bit observations are exact" true
    (Backend.equal_observation
       (Obs_bits [ (0, true) ])
       (Obs_bits [ (0, true) ]))

let test_backend_run_fun_measure () =
  (* every backend prepares |1>, measures 1, and reads the record back *)
  List.iter
    (fun (module B : Backend.S) ->
      let st, q = B.run_fun ~seed:1 ~in_:Qdata.qubit true (fun q -> return q) in
      check (B.name ^ ": prepared 1 measures 1") true
        (B.measure st (Wire.qubit_wire q));
      check (B.name ^ ": the measured wire reads back") true
        (B.read_bit st (Wire.qubit_wire q)))
    Backend.all

let test_backend_all_agree () =
  (* a fixed permutation circuit sits in every backend's gate set; all
     three must land on the classical simulator's answer *)
  let b, _ =
    Circ.generate ~in_:(Qdata.list_of 3 Qdata.qubit) (fun ql ->
        match ql with
        | [ a; bq; c ] ->
            let* () = qnot_ a in
            let* () = cnot ~control:a ~target:bq in
            let* () = swap bq c in
            return ql
        | _ -> assert false)
  in
  let inputs = [ false; true; false ] in
  let expected = Cs.run_circuit b inputs in
  List.iter
    (fun (module B : Backend.S) ->
      check (B.name ^ " agrees with the boolean run") true
        (Backend.run_and_measure (module B) ~seed:9 b inputs = expected))
    Backend.all

(* ------------------------------------------------------------------ *)
(* Cross-backend fault campaigns                                       *)

let test_inject_clifford_vs_statevector () =
  (* a Clifford circuit with an assertively-terminated ancilla: the
     polynomial-time campaign must classify every fault exactly as the
     amplitude-level one does *)
  let b, _ =
    Circ.generate ~in_:(Qdata.pair Qdata.qubit Qdata.qubit) (fun (a, bq) ->
        let* a = hadamard a in
        let* () = cnot ~control:a ~target:bq in
        let* () =
          with_ancilla (fun anc ->
              let* () = cnot ~control:a ~target:anc in
              let* () = cnot ~control:anc ~target:bq in
              cnot ~control:a ~target:anc)
        in
        return (a, bq))
  in
  let inputs = [ false; false ] in
  let rs = Inject.report_on (module Backend.Statevector) ~seed:2 b inputs in
  let rc = Inject.report_on (module Backend.Clifford) ~seed:2 b inputs in
  check "campaign is non-trivial" true (rs.Inject.faults > 0);
  check "same fault count" true (rs.Inject.faults = rc.Inject.faults);
  check "same detected count" true (rs.Inject.detected = rc.Inject.detected);
  check "same corrupted count" true (rs.Inject.corrupted = rc.Inject.corrupted);
  check "same masked count" true (rs.Inject.masked = rc.Inject.masked);
  check "identical per-finding outcomes" true
    (List.for_all2
       (fun (f1 : Inject.finding) (f2 : Inject.finding) ->
         f1.Inject.site = f2.Inject.site
         && f1.Inject.fault = f2.Inject.fault
         && f1.Inject.outcome = f2.Inject.outcome)
       rs.Inject.findings rc.Inject.findings)

(* ------------------------------------------------------------------ *)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_inplace_matches_reference;
    Alcotest.test_case "capacity grows geometrically" `Quick test_capacity_growth;
    Alcotest.test_case "capacity survives ancilla churn" `Quick
      test_capacity_retention_under_churn;
    Alcotest.test_case "backend lookup by name" `Quick test_backend_find;
    Alcotest.test_case "observation equality" `Quick test_observation_equality;
    Alcotest.test_case "run_fun + measure on every backend" `Quick
      test_backend_run_fun_measure;
    Alcotest.test_case "all backends agree on a permutation circuit" `Quick
      test_backend_all_agree;
    Alcotest.test_case "fault campaign: clifford matches statevector" `Quick
      test_inject_clifford_vs_statevector;
  ]
