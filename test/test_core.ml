(* Tests for the circuit IR and the Circ builder: physicality checks,
   control structure, ancilla scoping, with_computed, shape witnesses,
   boxed subcircuits, reversal, printing. *)

open Quipper
module Gen = Quipper_testgen.Gen
open Circ

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let gen1 f = fst (Circ.generate ~in_:Qdata.qubit f)
let gen2 f = fst (Circ.generate ~in_:(Qdata.pair Qdata.qubit Qdata.qubit) f)

let expect_error reason_pred f =
  match f () with
  | exception Errors.Error r -> check "expected error kind" true (reason_pred r)
  | _ -> Alcotest.fail "expected an Errors.Error"

(* ------------------------------------------------------------------ *)
(* Physicality checks (paper 4.1: run-time checks)                     *)

let test_no_cloning () =
  expect_error
    (function Errors.No_cloning _ -> true | _ -> false)
    (fun () -> gen1 (fun q -> cnot ~control:q ~target:q))

let test_dead_wire () =
  expect_error
    (function Errors.Dead_wire _ -> true | _ -> false)
    (fun () ->
      gen1 (fun q ->
          let* () = qterm_bit false q in
          hadamard q))

let test_wire_type () =
  expect_error
    (function Errors.Wire_type _ -> true | _ -> false)
    (fun () ->
      gen1 (fun q ->
          let* b = measure_qubit q in
          ignore b;
          (* the wire id survives but is classical now *)
          hadamard q))

let test_control_on_target () =
  expect_error
    (function Errors.No_cloning _ -> true | _ -> false)
    (fun () -> gen1 (fun q -> qnot_ q |> controlled [ ctl q ]))

let test_measure_under_control () =
  expect_error
    (function Errors.Not_controllable _ -> true | _ -> false)
    (fun () ->
      gen2 (fun (a, b) ->
          with_controls [ ctl a ]
            (let* _ = measure_qubit b in
             return ())))

let test_init_is_control_neutral () =
  (* inits and terms pass through controlled blocks uncontrolled; the
     gates inside acquire the control *)
  let b =
    gen1 (fun q -> with_controls [ ctl q ] (with_ancilla (fun a -> qnot_ a)))
  in
  let counts = Gatecount.aggregate b in
  checki "the not acquired the control" 1
    (Gatecount.get counts
       { Gatecount.kind = "Not"; inverted = false; pos_controls = 1; neg_controls = 0 });
  checki "init unaffected" 1 (Gatecount.find_kind counts "Init0");
  checki "term unaffected" 1 (Gatecount.find_kind counts "Term0")

let test_validate_catches_corruption () =
  let b = gen2 (fun (a, b) -> cnot ~control:a ~target:b >> return ()) in
  Circuit.validate_b b;
  (* corrupt: reference a bogus wire *)
  let bad =
    {
      b with
      Circuit.main =
        {
          b.Circuit.main with
          Circuit.gates =
            Array.append b.Circuit.main.Circuit.gates
              [| Gate.Gate { name = "H"; inv = false; targets = [ 99 ]; controls = [] } |];
        };
    }
  in
  expect_error
    (function Errors.Dead_wire 99 -> true | _ -> false)
    (fun () -> Circuit.validate_b bad)

(* ------------------------------------------------------------------ *)
(* Control structure                                                   *)

let test_nested_controls () =
  let b =
    fst
      (Circ.generate ~in_:(Qdata.triple Qdata.qubit Qdata.qubit Qdata.qubit)
         (fun (a, b, c) ->
           with_controls [ ctl a ]
             (with_controls [ ctl_neg b ] (qnot_ c))))
  in
  let counts = Gatecount.aggregate b in
  checki "controls accumulate" 1
    (Gatecount.get counts
       { Gatecount.kind = "Not"; inverted = false; pos_controls = 1; neg_controls = 1 })

let test_without_controls () =
  let b =
    gen2 (fun (a, b) -> with_controls [ ctl a ] (without_controls (qnot_ b)))
  in
  let counts = Gatecount.aggregate b in
  checki "control suppressed" 1
    (Gatecount.get counts
       { Gatecount.kind = "Not"; inverted = false; pos_controls = 0; neg_controls = 0 })

let test_classical_control () =
  let b =
    gen2 (fun (a, b) ->
        let* m = measure_qubit a in
        qnot_ b |> controlled [ ctl_bit m ])
  in
  Circuit.validate_b b;
  check "classically-controlled gate present" true
    (Array.exists
       (function
         | Gate.Gate { controls = [ { Gate.cty = Wire.C; _ } ]; _ } -> true
         | _ -> false)
       b.Circuit.main.Circuit.gates)

(* ------------------------------------------------------------------ *)
(* with_computed (paper 5.3.1)                                         *)

let test_with_computed_uncomputes () =
  let b =
    gen1 (fun q ->
        with_computed
          (let* a = qinit_bit false in
           let* () = cnot ~control:q ~target:a in
           return a)
          (fun a ->
            let* out = qinit_bit false in
            let* () = cnot ~control:a ~target:out in
            return out))
  in
  Circuit.validate_b b;
  (* net wires: input q + out; the intermediate a was uncomputed *)
  checki "two outputs" 2 (List.length b.Circuit.main.Circuit.outputs);
  let counts = Gatecount.aggregate b in
  checki "init count" 2 (Gatecount.find_kind counts "Init0");
  checki "term count" 1 (Gatecount.find_kind counts "Term0")

let test_with_computed_control_trimming () =
  let make trimming =
    Circ.control_trimming := trimming;
    Fun.protect
      ~finally:(fun () -> Circ.control_trimming := true)
      (fun () ->
        gen2 (fun (c, q) ->
            with_controls [ ctl c ]
              (with_computed
                 (let* a = qinit_bit false in
                  let* () = cnot ~control:q ~target:a in
                  return a)
                 (fun a ->
                   let* out = qinit_bit false in
                   let* () = cnot ~control:a ~target:out in
                   return out)
                 >>= fun _ -> return ())))
  in
  let trimmed = Gatecount.aggregate (make true) in
  let untrimmed = Gatecount.aggregate (make false) in
  (* trimmed: only the body CNOT carries the extra control *)
  checki "trimmed: 1 doubly-controlled not" 1
    (Gatecount.get trimmed
       { Gatecount.kind = "Not"; inverted = false; pos_controls = 2; neg_controls = 0 });
  checki "trimmed: 2 singly-controlled nots" 2
    (Gatecount.get trimmed
       { Gatecount.kind = "Not"; inverted = false; pos_controls = 1; neg_controls = 0 });
  checki "untrimmed: 3 doubly-controlled nots" 3
    (Gatecount.get untrimmed
       { Gatecount.kind = "Not"; inverted = false; pos_controls = 2; neg_controls = 0 })

let test_with_computed_classical_semantics () =
  (* f(x,y) = (x, y xor x) via compute-copy-uncompute round trip *)
  let shape = Qdata.pair Qdata.qubit Qdata.qubit in
  List.iter
    (fun (x, y) ->
      let x', y' =
        Quipper_sim.Classical.run_oracle ~in_:shape ~out:shape (x, y)
          (fun (x, y) ->
            let* () =
              with_computed
                (let* a = qinit_bit false in
                 let* () = cnot ~control:x ~target:a in
                 return a)
                (fun a -> cnot ~control:a ~target:y)
            in
            return (x, y))
      in
      check "x preserved" true (x' = x);
      check "y xor x" true (y' = (y <> x)))
    [ (false, false); (false, true); (true, false); (true, true) ]

(* ------------------------------------------------------------------ *)
(* Shape witnesses (paper 4.5)                                         *)

let test_qdata_roundtrip () =
  let w = Qdata.triple Qdata.qubit (Qdata.list_of 3 Qdata.qubit) Qdata.bit in
  checki "size" 5 (Qdata.size w);
  let b, (_q, _l, _c) =
    Circ.generate ~in_:w (fun x -> return x)
  in
  checki "inputs" 5 (List.length b.Circuit.main.Circuit.inputs);
  check "bit leaf type" true
    (List.exists (fun (e : Wire.endpoint) -> e.Wire.ty = Wire.C) b.Circuit.main.Circuit.inputs)

let test_qdata_bool_roundtrip () =
  let w = Qdata.pair (Qdata.list_of 4 Qdata.qubit) Qdata.qubit in
  let bools = ([ true; false; true; true ], false) in
  check "bool roundtrip" true (w.Qdata.bbuild (w.Qdata.bleaves bools) = bools)

let test_qinit_measure_generic () =
  let w = Qdata.pair Qdata.qubit (Qdata.list_of 2 Qdata.qubit) in
  let b =
    fst
      (Circ.generate_unit
         (let* x = qinit w (true, [ false; true ]) in
          let* _ = measure w x in
          return ()))
  in
  let counts = Gatecount.aggregate b in
  checki "three measures" 3 (Gatecount.find_kind counts "Meas");
  checki "two init1" 2 (Gatecount.find_kind counts "Init1");
  checki "one init0" 1 (Gatecount.find_kind counts "Init0")

let test_controlled_not_generic () =
  let w = Qdata.list_of 3 Qdata.qubit in
  let shape = Qdata.pair w w in
  let t, s =
    Quipper_sim.Classical.run_oracle ~in_:shape ~out:shape
      ([ false; false; false ], [ true; false; true ])
      (fun (t, s) ->
        let* () = controlled_not w ~target:t ~source:s in
        return (t, s))
  in
  check "copied" true (t = [ true; false; true ] && s = [ true; false; true ])

let test_shape_mismatch () =
  let w = Qdata.list_of 3 Qdata.qubit in
  expect_error
    (function Errors.Shape_mismatch _ -> true | _ -> false)
    (fun () -> w.Qdata.qleaves [])

(* ------------------------------------------------------------------ *)
(* Boxed subcircuits (paper 4.4.4)                                     *)

let boxed_h name = box name ~in_:Qdata.qubit ~out:Qdata.qubit hadamard

let test_box_defines_once () =
  let b =
    gen1 (fun q ->
        let* q = boxed_h "bh" q in
        let* q = boxed_h "bh" q in
        boxed_h "bh" q)
  in
  checki "one definition" 1 (List.length b.Circuit.sub_order);
  checki "three call gates" 3
    (Array.fold_left
       (fun acc g -> match g with Gate.Subroutine _ -> acc + 1 | _ -> acc)
       0 b.Circuit.main.Circuit.gates);
  let counts = Gatecount.aggregate b in
  checki "aggregated H count" 3 (Gatecount.find_kind counts "H")

let test_box_inline_agrees () =
  let b =
    gen1 (fun q ->
        let sub =
          box "sub2" ~in_:Qdata.qubit ~out:Qdata.qubit (fun q ->
              let* q = hadamard q in
              let* q = gate_T q in
              with_ancilla (fun a ->
                  let* () = cnot ~control:q ~target:a in
                  let* () = cnot ~control:q ~target:a in
                  return q))
        in
        let* q = sub q in
        sub q)
  in
  Circuit.validate_b b;
  let flat = Circuit.inline b in
  Circuit.validate flat;
  let agg = Gatecount.aggregate b in
  let shallow = Gatecount.shallow flat in
  checki "aggregate = inline count" (Gatecount.total agg) (Gatecount.total shallow);
  check "same breakdown" true (Gatecount.Counts.equal ( = ) agg shallow)

let test_box_creates_fresh_outputs () =
  (* a box whose body allocates a new wire: the call must bind fresh ids *)
  let dup =
    box "dup" ~in_:Qdata.qubit ~out:(Qdata.pair Qdata.qubit Qdata.qubit)
      (fun q ->
        let* c = qinit_bit false in
        let* () = cnot ~control:q ~target:c in
        return (q, c))
  in
  let b =
    gen1 (fun q ->
        let* q, c1 = dup q in
        let* _, c2 = dup c1 in
        let* () = qterm_bit false c2 |> without_controls in
        return q)
  in
  Circuit.validate_b b;
  let flat = Circuit.inline b in
  Circuit.validate flat

let test_box_leak_detection () =
  expect_error
    (function Errors.Shape_mismatch _ -> true | _ -> false)
    (fun () ->
      gen1
        (box "leaky" ~in_:Qdata.qubit ~out:Qdata.qubit (fun q ->
             let* _ = qinit_bit false in
             return q)))

let test_box_controlled_call () =
  let b =
    gen2 (fun (c, q) ->
        with_controls [ ctl c ] (boxed_h "bh3" q))
  in
  Circuit.validate_b b;
  let counts = Gatecount.aggregate b in
  checki "H acquired the call's control" 1
    (Gatecount.get counts
       { Gatecount.kind = "H"; inverted = false; pos_controls = 1; neg_controls = 0 })

let test_box_uncontrollable () =
  let meas_box =
    box "measbox" ~in_:Qdata.qubit ~out:Qdata.bit (fun q -> measure_qubit q)
  in
  (* defining and using it uncontrolled is fine *)
  let b = gen1 (fun q -> meas_box q) in
  Circuit.validate_b b;
  (* controlled use must fail *)
  expect_error
    (function Errors.Not_controllable _ -> true | _ -> false)
    (fun () ->
      gen2 (fun (c, q) -> with_controls [ ctl c ] (meas_box q)))

(* ------------------------------------------------------------------ *)
(* Reversal (paper 4.2.2 / 4.4.3)                                      *)

let test_reverse_simple_inverts () =
  let f q =
    let* q = hadamard q in
    let* q = gate_T q in
    return q
  in
  let b =
    gen1 (fun q ->
        let* q = f q in
        reverse_simple Qdata.qubit f q)
  in
  (* H T T* H: middle gates are mutual inverses *)
  let optimized = Transform.cancel_inverses b in
  checki "everything cancels" 0
    (Circuit.gate_count_shallow optimized.Circuit.main)

let test_reverse_with_init_term () =
  (* circuits with init/term reverse "without complaint" *)
  let f q =
    let* a = qinit_bit false in
    let* () = cnot ~control:q ~target:a in
    let* _ = hadamard a in
    return (q, a)
  in
  let b =
    fst
      (Circ.generate ~in_:(Qdata.pair Qdata.qubit Qdata.qubit)
         (fun (q, a) ->
           reverse_fun ~in_:Qdata.qubit ~out:(Qdata.pair Qdata.qubit Qdata.qubit) f (q, a)))
  in
  Circuit.validate_b b;
  let counts = Gatecount.aggregate b in
  (* the reversed circuit terminates the former ancilla *)
  checki "term present" 1 (Gatecount.find_kind counts "Term0")

let test_reverse_rejects_measurement () =
  expect_error
    (function Errors.Not_reversible _ -> true | _ -> false)
    (fun () ->
      gen1 (fun q ->
          reverse_fun ~in_:Qdata.qubit ~out:Qdata.bit measure_qubit (Wire.Bit (Wire.qubit_wire q))))

let test_circuit_level_reverse_roundtrip () =
  let b = gen2 (fun (a, b) ->
      let* _ = hadamard a in
      let* () = cnot ~control:a ~target:b in
      let* _ = gate_T b in
      return (a, b))
  in
  let rr = Reverse.bcircuit (Reverse.bcircuit b) in
  check "double reverse restores gates" true
    (rr.Circuit.main.Circuit.gates = b.Circuit.main.Circuit.gates)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let test_printer_output () =
  let b = gen2 (fun (a, b) ->
      let* _ = hadamard a in
      let* () = cnot ~control:a ~target:b in
      return (a, b))
  in
  let s = Printer.to_string b in
  check "has H" true (Astring_contains.contains s "QGate[\"H\"]");
  check "has controls" true (Astring_contains.contains s "with controls=[+0]");
  check "has inputs line" true (Astring_contains.contains s "Inputs: 0:Qubit, 1:Qubit")

let test_ascii_output () =
  let b = gen2 (fun (a, b) ->
      let* _ = hadamard a in
      let* () = cnot ~control:a ~target:b in
      return (a, b))
  in
  let s = Ascii.render b.Circuit.main in
  check "has H box" true (Astring_contains.contains s "[H]");
  check "has control dot" true (Astring_contains.contains s "*")

let test_comment_labels () =
  let b =
    gen1 (fun q ->
        let* () = comment_with_label "ENTER: test" Qdata.qubit q "x" in
        hadamard q)
  in
  let s = Printer.to_string b in
  check "comment text" true (Astring_contains.contains s "ENTER: test");
  check "comment label" true (Astring_contains.contains s "\"x\"")

(* ------------------------------------------------------------------ *)
(* Properties over random circuits                                     *)

let prop_generated_circuits_validate =
  QCheck2.Test.make ~name:"random programs generate valid circuits" ~count:100
    (Gen.program_gen ~n:4 ())
    (fun ops ->
      let b = Gen.circuit_of_program ~n:4 ops in
      Circuit.validate_b b;
      Circuit.validate (Circuit.inline b);
      true)

let prop_reverse_validates =
  QCheck2.Test.make ~name:"reversed random circuits validate" ~count:100
    (Gen.program_gen ~n:4 ())
    (fun ops ->
      let b = Gen.circuit_of_program ~n:4 ops in
      Circuit.validate_b (Reverse.bcircuit b);
      true)

let prop_double_reverse_identity =
  QCheck2.Test.make ~name:"reverse o reverse = id on gates" ~count:100
    (Gen.program_gen ~n:4 ())
    (fun ops ->
      let b = Gen.circuit_of_program ~n:4 ops in
      let b = (* strip comments: reversal drops them *) b in
      let rr = Reverse.bcircuit (Reverse.bcircuit b) in
      rr.Circuit.main.Circuit.gates
      = Array.of_seq
          (Seq.filter (fun g -> not (Gate.is_comment g))
             (Array.to_seq b.Circuit.main.Circuit.gates)))

let suite =
  [
    Alcotest.test_case "no-cloning rejected" `Quick test_no_cloning;
    Alcotest.test_case "dead wire rejected" `Quick test_dead_wire;
    Alcotest.test_case "wire type tracked through measure" `Quick test_wire_type;
    Alcotest.test_case "control = target rejected" `Quick test_control_on_target;
    Alcotest.test_case "measure under control rejected" `Quick test_measure_under_control;
    Alcotest.test_case "init/term are control-neutral" `Quick test_init_is_control_neutral;
    Alcotest.test_case "validate catches corruption" `Quick test_validate_catches_corruption;
    Alcotest.test_case "nested controls accumulate" `Quick test_nested_controls;
    Alcotest.test_case "without_controls" `Quick test_without_controls;
    Alcotest.test_case "classically-controlled gates" `Quick test_classical_control;
    Alcotest.test_case "with_computed uncomputes" `Quick test_with_computed_uncomputes;
    Alcotest.test_case "with_computed trims controls" `Quick test_with_computed_control_trimming;
    Alcotest.test_case "with_computed semantics" `Quick test_with_computed_classical_semantics;
    Alcotest.test_case "qdata wire roundtrip" `Quick test_qdata_roundtrip;
    Alcotest.test_case "qdata bool roundtrip" `Quick test_qdata_bool_roundtrip;
    Alcotest.test_case "generic qinit/measure" `Quick test_qinit_measure_generic;
    Alcotest.test_case "generic controlled_not" `Quick test_controlled_not_generic;
    Alcotest.test_case "shape mismatch detected" `Quick test_shape_mismatch;
    Alcotest.test_case "box defined once, called thrice" `Quick test_box_defines_once;
    Alcotest.test_case "aggregate count = inline count" `Quick test_box_inline_agrees;
    Alcotest.test_case "box with fresh outputs" `Quick test_box_creates_fresh_outputs;
    Alcotest.test_case "box leak detection" `Quick test_box_leak_detection;
    Alcotest.test_case "controlled box call" `Quick test_box_controlled_call;
    Alcotest.test_case "uncontrollable box" `Quick test_box_uncontrollable;
    Alcotest.test_case "reverse_simple inverts" `Quick test_reverse_simple_inverts;
    Alcotest.test_case "reverse across init/term" `Quick test_reverse_with_init_term;
    Alcotest.test_case "reverse rejects measurement" `Quick test_reverse_rejects_measurement;
    Alcotest.test_case "double circuit reverse" `Quick test_circuit_level_reverse_roundtrip;
    Alcotest.test_case "text printer" `Quick test_printer_output;
    Alcotest.test_case "ascii renderer" `Quick test_ascii_output;
    Alcotest.test_case "comments and labels" `Quick test_comment_labels;
    QCheck_alcotest.to_alcotest prop_generated_circuits_validate;
    QCheck_alcotest.to_alcotest prop_reverse_validates;
    QCheck_alcotest.to_alcotest prop_double_reverse_identity;
  ]
