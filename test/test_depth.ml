(* Tests for the depth analysis and the per-subroutine counter. *)

open Quipper
module Gen = Quipper_testgen.Gen
open Circ

let checki = Alcotest.(check int)
let check = Alcotest.(check bool)

let test_sequential_depth () =
  let b, _ =
    Circ.generate ~in_:Qdata.qubit (fun q ->
        iterate 7 hadamard q)
  in
  checki "7 sequential gates" 7 (Depth.depth b)

let test_parallel_depth () =
  let b, _ =
    Circ.generate ~in_:(Qdata.list_of 6 Qdata.qubit) (fun qs ->
        let* () = iterm hadamard_ qs in
        return qs)
  in
  checki "6 parallel gates, depth 1" 1 (Depth.depth b)

let test_entangling_depth () =
  (* GHZ chain: each CNOT waits for the previous *)
  let n = 5 in
  let b, _ =
    Circ.generate ~in_:(Qdata.list_of n Qdata.qubit) (fun qs ->
        let qs = Array.of_list qs in
        let* () = hadamard_ qs.(0) in
        let* () =
          iterm
            (fun i -> cnot ~control:qs.(i) ~target:qs.(i + 1))
            (List.init (n - 1) Fun.id)
        in
        return (Array.to_list qs))
  in
  checki "H + chain of CNOTs" n (Depth.depth b)

let test_ancilla_depth () =
  (* init/term each cost one step on their wire *)
  let b, _ =
    Circ.generate ~in_:Qdata.qubit (fun q ->
        with_ancilla (fun a ->
            let* () = cnot ~control:q ~target:a in
            let* () = cnot ~control:q ~target:a in
            return q))
  in
  (* init, 2 cnots, term on the ancilla timeline *)
  checki "ancilla timeline" 4 (Depth.depth b)

let test_hierarchical_depth_bound () =
  (* boxed depth is an upper bound on the inlined depth *)
  let sub =
    box "dsub" ~in_:(Qdata.pair Qdata.qubit Qdata.qubit)
      ~out:(Qdata.pair Qdata.qubit Qdata.qubit)
      (fun (a, b) ->
        let* _ = hadamard a in
        let* _ = hadamard b in
        (* depth 1 inlined, but the call serialises both wires *)
        return (a, b))
  in
  let b, _ =
    Circ.generate ~in_:(Qdata.pair Qdata.qubit Qdata.qubit) (fun (a, bq) ->
        let* x = sub (a, bq) in
        sub x)
  in
  let boxed = Depth.depth b in
  let flat =
    Depth.depth_of_circuit ~sub_depth:(fun _ -> assert false) (Circuit.inline b)
  in
  check "bound holds" true (boxed >= flat);
  checki "flat depth" 2 flat;
  checki "boxed bound" 2 boxed

let prop_depth_bound_random =
  QCheck2.Test.make ~name:"hierarchical depth bounds inlined depth" ~count:60
    (Gen.program_gen ~n:4 ())
    (fun ops ->
      let b = Gen.circuit_of_program ~n:4 ops in
      let boxed = Depth.depth b in
      let flat =
        Depth.depth_of_circuit ~sub_depth:(fun _ -> 0) (Circuit.inline b)
      in
      boxed >= flat && flat > 0 = (boxed > 0))

let test_depth_le_gates () =
  let p = { Algo_tf.Oracle.l = 4; n = 3; r = 2 } in
  let b = Algo_tf.Qwtfp.generate_pow17 ~p () in
  let d = Depth.depth b in
  let total = Gatecount.total (Gatecount.aggregate b) in
  check "1 <= depth <= total gates" true (d >= 1 && d <= total)

let test_profile () =
  let b, _ =
    Circ.generate ~in_:Qdata.qubit (fun q ->
        let* q = gate_T q in
        let* q = hadamard q in
        gate_T q)
  in
  let pr = Depth.profile b in
  checki "t count" 2 pr.Depth.t_gates;
  checki "depth" 3 pr.Depth.depth

let test_per_subroutine () =
  let p = { Algo_tf.Oracle.l = 4; n = 3; r = 2 } in
  let b = Algo_tf.Qwtfp.generate_pow17 ~p () in
  let per = Gatecount.per_subroutine b in
  check "has o7, o8, o4" true
    (List.for_all
       (fun n -> List.mem_assoc n per)
       [ "o7_ADD_controlled"; "o8"; "o4" ]);
  (* o4's own aggregate equals the whole circuit's (the main is one call) *)
  let o4 = List.assoc "o4" per in
  let whole = Gatecount.summarize b in
  checki "o4 total = circuit total" whole.Gatecount.total o4.Gatecount.total;
  (* nesting is monotone: o7 <= o8 <= o4 *)
  let t name = (List.assoc name per).Gatecount.total in
  check "monotone nesting" true
    (t "o7_ADD_controlled" < t "o8" && t "o8" < t "o4")

let suite =
  [
    Alcotest.test_case "sequential depth" `Quick test_sequential_depth;
    Alcotest.test_case "parallel depth" `Quick test_parallel_depth;
    Alcotest.test_case "entangling chain depth" `Quick test_entangling_depth;
    Alcotest.test_case "ancilla timeline depth" `Quick test_ancilla_depth;
    Alcotest.test_case "hierarchical bound" `Quick test_hierarchical_depth_bound;
    QCheck_alcotest.to_alcotest prop_depth_bound_random;
    Alcotest.test_case "depth <= gates" `Quick test_depth_le_gates;
    Alcotest.test_case "profile" `Quick test_profile;
    Alcotest.test_case "per-subroutine counts" `Quick test_per_subroutine;
  ]
