(* The differential-simulation harness: the same random circuits run
   through statevector vs. classical vs. Clifford simulators on the gate
   fragments the pairs share, failing on any divergence. Each property
   runs 40+ random circuits, so one [dune runtest] crosses well over 100
   circuits across three simulator pairs. *)

open Quipper
module Sv = Quipper_sim.Statevector
module Cl = Quipper_sim.Clifford
module Cs = Quipper_sim.Classical

let inputs_gen n = QCheck2.Gen.(list_repeat n bool)

let bit_prob b = if b then 1.0 else 0.0

(* classical vs statevector: on basis-state-preserving circuits the
   dense simulator must land exactly on the boolean simulator's output
   basis state *)
let prop_classical_vs_statevector =
  let n = 5 in
  QCheck2.Test.make ~name:"differential: classical vs statevector" ~count:40
    QCheck2.Gen.(pair (Gen.classical_program_gen ~n) (inputs_gen n))
    (fun (ops, inputs) ->
      let b = Gen.circuit_of_program ~n ops in
      let expected = Cs.run_circuit b inputs in
      let st = Sv.run_circuit ~seed:7 b inputs in
      List.for_all2
        (fun (e : Wire.endpoint) bit ->
          abs_float (Sv.prob_one st e.Wire.wire -. bit_prob bit) < 1e-9)
        b.Circuit.main.Circuit.outputs expected)

(* classical vs Clifford: the permutation/parity fragment (X, CNOT,
   swap) runs on both; the tableau's measurements must be deterministic
   and equal to the boolean run *)
let prop_classical_vs_clifford =
  let n = 5 in
  QCheck2.Test.make ~name:"differential: classical vs clifford" ~count:40
    QCheck2.Gen.(pair (Gen.permutation_program_gen ~n) (inputs_gen n))
    (fun (ops, inputs) ->
      let b = Gen.circuit_of_program ~n ops in
      let expected = Cs.run_circuit b inputs in
      let st = Cl.run_circuit ~seed:5 b inputs in
      let qs =
        List.map (fun (e : Wire.endpoint) -> Wire.Qubit e.Wire.wire)
          b.Circuit.main.Circuit.outputs
      in
      Cl.measure_and_read st (Qdata.list_of n Qdata.qubit) qs = expected)

(* statevector vs Clifford: random Clifford programs followed by their
   library-generated reverse must map every basis input to itself in
   both simulators — a deterministic observable that exercises
   superposition-generating gates (H, S) on both sides *)
let prop_statevector_vs_clifford_roundtrip =
  let n = 4 in
  QCheck2.Test.make ~name:"differential: statevector vs clifford (roundtrips)"
    ~count:40
    QCheck2.Gen.(pair (Gen.clifford_program_gen ~n) (inputs_gen n))
    (fun (ops, inputs) ->
      let b = Gen.roundtrip_circuit_of_program ~n ops in
      let st = Sv.run_circuit ~seed:11 b inputs in
      let sv_ok =
        List.for_all2
          (fun (e : Wire.endpoint) bit ->
            abs_float (Sv.prob_one st e.Wire.wire -. bit_prob bit) < 1e-9)
          b.Circuit.main.Circuit.outputs inputs
      in
      let stc = Cl.run_circuit ~seed:11 b inputs in
      let qs =
        List.map (fun (e : Wire.endpoint) -> Wire.Qubit e.Wire.wire)
          b.Circuit.main.Circuit.outputs
      in
      let cl_ok = Cl.measure_and_read stc (Qdata.list_of n Qdata.qubit) qs = inputs in
      sv_ok && cl_ok)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_classical_vs_statevector;
      prop_classical_vs_clifford;
      prop_statevector_vs_clifford_roundtrip;
    ]
