(* The differential-simulation harness: the same random circuits run
   through every simulator backend whose gate set supports the fragment,
   failing on any divergence. Written once over the unified
   {!Quipper_sim.Backend} contract: each property fixes an oracle (the
   classical simulation, or the identity for roundtrip circuits) and
   folds a [(module Backend.S)] list over it. Each property runs 40
   random circuits, so one [dune runtest] crosses well over 100 circuits
   across the backend pairs. *)

open Quipper
module Gen = Quipper_testgen.Gen
module Backend = Quipper_sim.Backend
module Cs = Quipper_sim.Classical

let inputs_gen n = QCheck2.Gen.(list_repeat n bool)

(* Run [b] on every backend in [backends] (same seed — on these
   deterministic-outcome circuits the seed only fixes the sampling
   stream) and check the measured outputs against [expected]. *)
let agree ~seed backends (b : Circuit.b) inputs expected =
  List.for_all
    (fun (module B : Backend.S) ->
      Backend.run_and_measure (module B) ~seed b inputs = expected)
    backends

(* classical fragment: on basis-state-preserving circuits, every backend
   that accepts the gates (Toffoli rules out the stabilizer one) must
   land exactly on the boolean simulator's output basis state *)
let prop_classical_vs_statevector =
  let n = 5 in
  QCheck2.Test.make ~name:"differential: classical vs statevector" ~count:40
    QCheck2.Gen.(pair (Gen.classical_program_gen ~n ()) (inputs_gen n))
    (fun (ops, inputs) ->
      let b = Gen.circuit_of_program ~n ops in
      let expected = Cs.run_circuit b inputs in
      agree ~seed:7
        [ (module Backend.Classical); (module Backend.Statevector) ]
        b inputs expected)

(* permutation/parity fragment (X, CNOT, swap): the intersection of all
   three gate sets — every backend must agree with the boolean run *)
let prop_classical_vs_clifford =
  let n = 5 in
  QCheck2.Test.make ~name:"differential: classical vs clifford" ~count:40
    QCheck2.Gen.(pair (Gen.permutation_program_gen ~n ()) (inputs_gen n))
    (fun (ops, inputs) ->
      let b = Gen.circuit_of_program ~n ops in
      let expected = Cs.run_circuit b inputs in
      agree ~seed:5 Backend.all b inputs expected)

(* random Clifford programs followed by their library-generated reverse
   must map every basis input to itself on the quantum backends — a
   deterministic observable that exercises superposition-generating
   gates (H, S) on both sides *)
let prop_statevector_vs_clifford_roundtrip =
  let n = 4 in
  QCheck2.Test.make ~name:"differential: statevector vs clifford (roundtrips)"
    ~count:40
    QCheck2.Gen.(pair (Gen.clifford_program_gen ~n ()) (inputs_gen n))
    (fun (ops, inputs) ->
      let b = Gen.roundtrip_circuit_of_program ~n ops in
      agree ~seed:11
        [ (module Backend.Statevector); (module Backend.Clifford) ]
        b inputs inputs)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_classical_vs_statevector;
      prop_classical_vs_clifford;
      prop_statevector_vs_clifford_roundtrip;
    ]
