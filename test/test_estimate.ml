(* The symbolic resource estimator ([Quipper_estimate]).

   The load-bearing property is differential: on everything small enough
   to count exactly, the symbolic vector must be bit-identical to the
   streamed/materialized [Gatecount] summary (counts key for key,
   T-count, peak wires), its depth bound must equal the hierarchical
   [Depth.depth] and dominate the exact inlined depth, and every
   combinator ([seq], [repeat], [inverse], [controlled], [in_base]) must
   match the materialized circuit it models. Then the arbitrary-precision
   layer ([Wide]) is checked past native-int range, and the composed
   BWT/TF estimates are checked against the streamed whole algorithms —
   the small-parameter anchor of the scaled tables in EXPERIMENTS.md. *)

open Quipper
open Circ
module Gen = Quipper_testgen.Gen
module Estimate = Quipper_estimate.Estimate
module Wide = Quipper_estimate.Wide
module Qureg = Quipper_arith.Qureg

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Wide: arbitrary-precision naturals                                  *)

let test_wide_basics () =
  check "zero" true (Wide.is_zero Wide.zero && Wide.to_int_opt Wide.zero = Some 0);
  List.iter
    (fun x ->
      check "of_int roundtrip" true (Wide.to_int_opt (Wide.of_int x) = Some x);
      check "to_string = string_of_int" true
        (Wide.to_string (Wide.of_int x) = string_of_int x))
    [ 0; 1; 7; 999_999_999; 1_000_000_000; 123_456_789_012_345; max_int ];
  check "of_int negative raises" true
    (match Wide.of_int (-1) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* add/mul against the int reference on a deterministic grid *)
  let xs = [ 0; 1; 2; 999_999_999; 1_000_000_001; 123_456_789 ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check "add ref" true
            (Wide.to_int_opt (Wide.add (Wide.of_int a) (Wide.of_int b))
            = Some (a + b));
          check "mul ref" true
            (Wide.to_int_opt (Wide.mul (Wide.of_int a) (Wide.of_int b))
            = Some (a * b));
          check "compare ref" true
            (Wide.compare (Wide.of_int a) (Wide.of_int b) = compare a b))
        xs)
    xs;
  check "succ" true (Wide.equal (Wide.succ Wide.zero) Wide.one)

let test_wide_overflow () =
  let e18 = Wide.of_int 1_000_000_000_000_000_000 in
  let sq = Wide.mul e18 e18 in
  check "10^36 string" true
    (Wide.to_string sq = "1000000000000000000000000000000000000");
  check "10^36 does not fit" true (Wide.to_int_opt sq = None);
  check "max_int fits" true
    (Wide.to_int_opt (Wide.of_int max_int) = Some max_int);
  check "2*max_int does not fit" true
    (Wide.to_int_opt (Wide.mul_int (Wide.of_int max_int) 2) = None);
  check "max_ picks the bigger" true
    (Wide.equal (Wide.max_ e18 sq) sq && Wide.equal (Wide.max_ sq e18) sq)

(* ------------------------------------------------------------------ *)
(* The property corpus: symbolic = exact on random programs            *)

let qn = 5
let wshape n = Qdata.list_of n Qdata.qubit
let est_of ~n ops = Estimate.of_circ ~in_:(wshape n) (Gen.program_fun ops)

let counts_match v (exact : Gatecount.t) =
  let proj = Estimate.counts v in
  List.length proj = Gatecount.Counts.cardinal exact
  && List.for_all (fun (k, w) -> Wide.equal_int w (Gatecount.get exact k)) proj

let exact_t_count (s : Gatecount.summary) =
  Gatecount.Counts.fold
    (fun (k : Gatecount.key) c acc ->
      if k.Gatecount.kind = "T" && k.pos_controls = 0 && k.neg_controls = 0
      then acc + c
      else acc)
    s.Gatecount.counts 0

let prop_corpus =
  QCheck2.Test.make
    ~name:
      "corpus: of_circuit/sink = summarize, depth = Depth.depth, class \
       rollup (200)"
    ~count:200
    (Gen.program_gen ~n:qn ())
    (fun ops ->
      let b = Gen.circuit_of_program ~n:qn ops in
      let s = Gatecount.summarize b in
      let v = Estimate.of_circuit b in
      let vs = est_of ~n:qn ops in
      Estimate.agrees v s
      (* the streaming sink and the materialized walk build one vector *)
      && Estimate.equal v vs
      && Wide.equal_int (Estimate.t_count v) (exact_t_count s)
      (* generated programs are flat at top level, so the depth bound is
         the exact scheduled depth *)
      && Wide.equal_int (Estimate.depth_bound v) (Depth.depth b)
      && Estimate.peak_wires v = s.Gatecount.qubits
      (* the by-class rollup partitions the total *)
      && Wide.equal
           (List.fold_left
              (fun acc (_, w) -> Wide.add acc w)
              Wide.zero (Estimate.by_class v))
           (Estimate.total v))

(* [inverse] and [controlled] against the materialized counterparts. *)
let prop_inverse =
  QCheck2.Test.make ~name:"corpus: inverse = invert_counts (100)" ~count:100
    (Gen.program_gen ~n:qn ())
    (fun ops ->
      let b = Gen.circuit_of_program ~n:qn ops in
      let v = Estimate.inverse (Estimate.of_circuit b) in
      counts_match v (Gatecount.invert_counts (Gatecount.aggregate b))
      && Estimate.in_arity v = List.length b.Circuit.main.Circuit.outputs
      && Estimate.out_arity v = List.length b.Circuit.main.Circuit.inputs)

let prop_controlled =
  QCheck2.Test.make ~name:"corpus: controlled = with_controls (100)"
    ~count:100
    (Gen.program_gen ~n:qn ())
    (fun ops ->
      (* the same program under one ambient positive control, materialized
         with an extra control qubit *)
      let bc, _ =
        Circ.generate
          ~in_:(wshape (qn + 1))
          (fun ql ->
            match ql with
            | c :: rest ->
                let* () =
                  with_controls [ ctl c ] (Gen.program ops (Array.of_list rest))
                in
                return ql
            | [] -> assert false)
      in
      let v = Estimate.controlled ~pos:1 (est_of ~n:qn ops) in
      counts_match v (Gatecount.aggregate bc))

(* [seq]/[repeat] against the materialized concatenation and loop. *)
let prop_compose =
  QCheck2.Test.make ~name:"corpus: seq/repeat = concatenated/looped (100)"
    ~count:100
    QCheck2.Gen.(pair (Gen.program_gen ~n:qn ()) (Gen.program_gen ~n:qn ()))
    (fun (ops1, ops2) ->
      let both, _ =
        Circ.generate ~in_:(wshape qn) (fun ql ->
            let* ql = Gen.program_fun ops1 ql in
            Gen.program_fun ops2 ql)
      in
      let looped k =
        let b, _ =
          Circ.generate ~in_:(wshape qn) (fun ql ->
              iterate k (Gen.program_fun ops1) ql)
        in
        b
      in
      let v1 = est_of ~n:qn ops1 and v2 = est_of ~n:qn ops2 in
      (* counts, peak and arities are exact under seq and repeat; depth
         composes as a bound, so it is not part of [agrees] *)
      Estimate.agrees (Estimate.seq v1 v2) (Gatecount.summarize both)
      && Estimate.agrees (Estimate.repeat 3 v1)
           (Gatecount.summarize (looped 3))
      && Estimate.agrees (Estimate.repeat 1 v1) (Gatecount.summarize (looped 1))
      && Wide.is_zero (Estimate.total (Estimate.repeat 0 v1)))

(* [in_base]: the symbolic transfer function against the real
   decomposition — counts exact (no controls cross box boundaries in
   flat programs), depth/peak sound bounds. *)
let prop_in_base base name =
  QCheck2.Test.make
    ~name:(Fmt.str "corpus: in_base %s = decompose_generic (80)" name)
    ~count:80
    (Gen.program_gen ~n:qn ())
    (fun ops ->
      let b = Gen.circuit_of_program ~n:qn ops in
      let d = Decompose.decompose_generic base b in
      let ds = Gatecount.summarize d in
      let v = Estimate.in_base base (Estimate.of_circuit b) in
      counts_match v ds.Gatecount.counts
      && Wide.equal_int (Estimate.total v) ds.Gatecount.total
      && (match Wide.to_int_opt (Estimate.depth_bound v) with
         | Some dep -> dep >= Depth.depth d
         | None -> true)
      && Estimate.peak_wires v >= ds.Gatecount.qubits)

(* ------------------------------------------------------------------ *)
(* Boxed circuits: calls, multiplicities, controlled and inverse calls *)

let boxed_ops =
  [ Gen.H 0; Gen.CNot (0, 1); Gen.T 2; Gen.Toffoli (0, true, 1, false, 3);
    Gen.Swap (2, 3) ]

let boxed_circuit () =
  let n = 4 in
  let w = wshape n in
  let step ql =
    Circ.box "step" ~in_:w ~out:w (Gen.program_fun boxed_ops) ql
  in
  let b, _ =
    Circ.generate
      ~in_:(wshape (n + 1))
      (fun ql ->
        match ql with
        | c :: rest ->
            let* rest = iterate 2 step rest in
            let* rest = with_controls [ ctl c ] (step rest) in
            let* rest = reverse_simple w step rest in
            return (c :: rest)
        | [] -> assert false)
  in
  b

let test_boxed () =
  let b = boxed_circuit () in
  let s = Gatecount.summarize b in
  let v = Estimate.of_circuit b in
  check "boxed counts exact (plain, controlled and inverse calls)" true
    (Estimate.agrees v s);
  check "boxed depth bound = hierarchical Depth.depth" true
    (Wide.equal_int (Estimate.depth_bound v) (Depth.depth b));
  let flat = Circuit.of_main (Circuit.inline b) in
  check "boxed depth bound >= exact inlined depth" true
    (match Wide.to_int_opt (Estimate.depth_bound v) with
    | Some d -> d >= Depth.depth flat
    | None -> false);
  check "boxed peak = inlined peak" true
    (Estimate.peak_wires v = Gatecount.peak_wires flat)

(* ------------------------------------------------------------------ *)
(* Past native-int range                                               *)

let test_scaled_totals () =
  let v = est_of ~n:3 [ Gen.H 0; Gen.CNot (0, 1) ] in
  check "base total" true (Wide.equal_int (Estimate.total v) 2);
  let tera = Estimate.repeat 1_000_000_000_000 v in
  check "10^12 repetitions" true
    (Wide.to_string (Estimate.total tera) = "2000000000000");
  (* 2 * 10^9 * 10^9 * 10^3 = 2*10^21 > max_int: only Wide can say it *)
  let huge =
    Estimate.repeat 1_000 (Estimate.repeat 1_000_000_000
        (Estimate.repeat 1_000_000_000 v))
  in
  check "2*10^21 exact decimal" true
    (Wide.to_string (Estimate.total huge) = "2000000000000000000000");
  check "2*10^21 does not fit an int" true
    (Wide.to_int_opt (Estimate.total huge) = None);
  check "peak unchanged by repetition" true
    (Estimate.peak_wires huge = Estimate.peak_wires v)

(* ------------------------------------------------------------------ *)
(* The composed algorithm estimates against the streamed exact counts  *)

let summary_and_depth circ =
  let (s, d), _ =
    Circ.run_streaming_unit circ (Sink.tee (Sink.gatecount ()) (Sink.depth ()))
  in
  (s, d)

let bwt_estimate ~(p : Algo_bwt.params) oracle =
  let m = Algo_bwt.label_width p in
  let prologue =
    Estimate.of_circ_unit (Qureg.init ~width:m Algo_bwt.entrance)
  in
  let step =
    Estimate.of_circ ~in_:(Qureg.shape m) (fun a ->
        let* () = Algo_bwt.walk_step ~p oracle a in
        return a)
  in
  let epilogue =
    Estimate.of_circ ~in_:(Qureg.shape m) (fun a ->
        Circ.measure (Qureg.shape m) a)
  in
  Estimate.seq prologue
    (Estimate.seq (Estimate.repeat p.Algo_bwt.s step) epilogue)

let test_bwt_composition () =
  List.iter
    (fun (name, mk) ->
      let p = { Algo_bwt.n = 2; s = 3; dt = Algo_bwt.default_params.Algo_bwt.dt } in
      let oracle = mk p in
      let s, d = summary_and_depth (Algo_bwt.whole ~p oracle) in
      let v = bwt_estimate ~p oracle in
      check (name ^ ": composed estimate = streamed exact") true
        (Estimate.agrees v s);
      check (name ^ ": depth bound >= streamed depth") true
        (match Wide.to_int_opt (Estimate.depth_bound v) with
        | Some dep -> dep >= d
        | None -> false))
    [ ("orthodox", Algo_bwt.orthodox_oracle); ("template", Algo_bwt.template_oracle) ]

let test_tf_composition () =
  let p = { Algo_tf.Oracle.l = 2; n = 2; r = 1 } in
  let s, d = summary_and_depth (Algo_tf.Qwtfp.a1_QWTFP ~p) in
  let prologue = Estimate.of_circ_unit (Algo_tf.Qwtfp.a1_prologue ~p) in
  let step =
    Estimate.of_circ ~in_:(Algo_tf.Qwtfp.regs_shape p) (fun regs ->
        Algo_tf.Qwtfp.a4_GCQWStep ~p regs)
  in
  let epilogue =
    Estimate.of_circ ~in_:(Algo_tf.Qwtfp.regs_shape p) (fun regs ->
        Algo_tf.Qwtfp.a1_epilogue ~p regs)
  in
  let v =
    Estimate.seq prologue
      (Estimate.seq
         (Estimate.repeat (Algo_tf.Qwtfp.r1_iterations p) step)
         epilogue)
  in
  check "tf: composed estimate = streamed exact" true (Estimate.agrees v s);
  check "tf: depth bound >= streamed depth" true
    (match Wide.to_int_opt (Estimate.depth_bound v) with
    | Some dep -> dep >= d
    | None -> false)

let suite =
  [
    Alcotest.test_case "wide: basics vs int reference" `Quick test_wide_basics;
    Alcotest.test_case "wide: past native-int range" `Quick test_wide_overflow;
    QCheck_alcotest.to_alcotest prop_corpus;
    QCheck_alcotest.to_alcotest prop_inverse;
    QCheck_alcotest.to_alcotest prop_controlled;
    QCheck_alcotest.to_alcotest prop_compose;
    QCheck_alcotest.to_alcotest (prop_in_base Decompose.Toffoli "toffoli");
    QCheck_alcotest.to_alcotest (prop_in_base Decompose.Binary "binary");
    Alcotest.test_case "boxed: calls, controls, inverses" `Quick test_boxed;
    Alcotest.test_case "scaled: totals past int range" `Quick
      test_scaled_totals;
    Alcotest.test_case "bwt: composed = streamed, both oracles" `Quick
      test_bwt_composition;
    Alcotest.test_case "tf: composed = streamed" `Quick test_tf_composition;
  ]
