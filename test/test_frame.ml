(* Tests for the Pauli-frame fault engine (Quipper_sim.Frame) and its
   wiring into Noise.run_trials_on / Inject.report_on: the acceptance
   property is bit-identity — at equal derived seeds, campaigns on the
   frame engine classify every trial and every fault exactly as the
   slow one-simulation-per-attempt path does, over a 100+-circuit
   deterministic Clifford corpus and on both quantum backends. *)

open Quipper
open Circ
module Noise = Quipper_sim.Noise
module Inject = Quipper_sim.Inject
module Frame = Quipper_sim.Frame
module Backend = Quipper_sim.Backend
module Rng = Quipper_math.Rng
module R = Algo_repcode

let check = Alcotest.(check bool)
let contains = Astring_contains.contains

(* ------------------------------------------------------------------ *)
(* A deterministic Clifford corpus: random stabilizer sandwiches U;U†.
   Every circuit is built from the clifford gate set and ends in the
   computational-basis state it started from, so every measurement and
   assertive termination is deterministic on the clean run — exactly
   the frame engine's eligibility class — while noise exercises every
   conjugation rule, detection, retry and readout path. *)

type cg =
  | G1 of string * int  (* self-inverse: H, X, Y, Z *)
  | Gs of int
  | Gv of int
  | Gcnot of int * int * bool  (* control polarity *)
  | Gcz of int * int
  | Gswap of int * int

let rand_gate rng n =
  let w () = Rng.int rng n in
  let pair () =
    let a = w () and b = w () in
    (a, if b = a then (b + 1) mod n else b)
  in
  match Rng.int rng 11 with
  | 0 | 1 -> G1 ("H", w ())
  | 2 -> G1 ("X", w ())
  | 3 -> G1 ("Y", w ())
  | 4 -> G1 ("Z", w ())
  | 5 -> Gs (w ())
  | 6 -> Gv (w ())
  | 7 ->
      let a, b = pair () in
      Gcnot (a, b, true)
  | 8 ->
      let a, b = pair () in
      Gcnot (a, b, false)
  | 9 ->
      let a, b = pair () in
      Gcz (a, b)
  | _ ->
      let a, b = pair () in
      Gswap (a, b)

let apply qs = function
  | G1 ("H", i) -> hadamard_ qs.(i)
  | G1 (nm, i) -> gate1 nm qs.(i)
  | Gs i ->
      let* _ = gate_S qs.(i) in
      return ()
  | Gv i ->
      let* _ = gate_V qs.(i) in
      return ()
  | Gcnot (a, b, true) -> cnot ~control:qs.(a) ~target:qs.(b)
  | Gcnot (a, b, false) -> with_controls [ ctl_neg qs.(a) ] (qnot_ qs.(b))
  | Gcz (a, b) -> with_controls [ ctl qs.(a) ] (gate1 "Z" qs.(b))
  | Gswap (a, b) -> swap qs.(a) qs.(b)

let unapply qs = function
  | Gs i -> gate_S_inv qs.(i)
  | Gv i -> gate_V_inv qs.(i)
  | g -> apply qs g

let rand_gates rng ~n ~len = List.init len (fun _ -> rand_gate rng n)

let sandwich gs qs =
  let* () = iterm (apply qs) gs in
  iterm (unapply qs) (List.rev gs)

(* Variant A: U;U† — outputs are the inputs, measured deterministic. *)
let circuit_plain ~n gs =
  let b, _ =
    Circ.generate ~in_:(Qdata.list_of n Qdata.qubit) (fun ql ->
        let qs = Array.of_list ql in
        let* () = sandwich gs qs in
        return ql)
  in
  b

(* Variant B: a |0> ancilla joins the register inside its own sandwich,
   then assertively terminates — under noise the assertion makes
   Detected failures (and retries, and Gave_up) reachable. *)
let circuit_ancilla ~n gs gs2 =
  let b, _ =
    Circ.generate ~in_:(Qdata.list_of n Qdata.qubit) (fun ql ->
        let qs = Array.of_list ql in
        let* () = sandwich gs qs in
        let* a = qinit_bit false in
        let ext = Array.append qs [| a |] in
        let* () = sandwich gs2 ext in
        let* () = qterm_bit false a in
        return ql)
  in
  b

(* Variant C: mid-circuit measurement feeding a classically-controlled
   Pauli — the error-correction shape. The measured bit is
   deterministic on the clean run; under noise it diverges per trial,
   and the frame engine must absorb the divergence exactly (a
   classically-controlled X is a Pauli either way). *)
let circuit_measure ~n gs =
  let b, _ =
    Circ.generate ~in_:(Qdata.list_of n Qdata.qubit) (fun ql ->
        let qs = Array.of_list ql in
        let* () = sandwich gs qs in
        let* m = measure_qubit qs.(0) in
        let* () = with_controls [ ctl_bit m ] (qnot_ qs.(1)) in
        return ())
  in
  b

let corpus_cfg =
  { Noise.bit_flip = 0.01; phase_flip = 0.005; depolarizing = 0.05; readout = 0.01 }

let backends : (string * (module Backend.S)) list =
  [ ("statevector", (module Backend.Statevector)); ("clifford", (module Backend.Clifford)) ]

let stats_agree (s1 : Noise.stats) (s2 : Noise.stats) =
  s1.Noise.outcomes = s2.Noise.outcomes
  && s1.Noise.successes = s2.Noise.successes
  && s1.Noise.wrong = s2.Noise.wrong
  && s1.Noise.gave_up = s2.Noise.gave_up
  && s1.Noise.errored = s2.Noise.errored
  && s1.Noise.attempts = s2.Noise.attempts
  && s1.Noise.detected_failures = s2.Noise.detected_failures

(* The tentpole acceptance test: >= 100 corpus circuits, trials
   bit-identical between engines on both backends, and the frame engine
   actually engaged (not silently falling back throughout). *)
let test_corpus_trials_bit_identical () =
  let n = 4 in
  let circuits = ref 0 in
  for seed = 1 to 40 do
    let rng = Rng.create seed in
    let len = 4 + Rng.int rng 12 in
    let gs = rand_gates rng ~n ~len in
    let gs2 = rand_gates rng ~n:(n + 1) ~len:6 in
    let inputs = List.init n (fun _ -> Rng.int rng 2 = 1) in
    List.iter
      (fun b ->
        incr circuits;
        List.iter
          (fun (bname, backend) ->
            let expected = Noise.run_and_measure_on backend ~seed:1 Noise.none b inputs in
            let run engine =
              Noise.run_trials_on backend ~master_seed:(7 * seed) ~engine ~trials:20
                ~max_failures:2 corpus_cfg b inputs ~expected
            in
            let s_slow = run `Slow and s_auto = run `Auto in
            if not (stats_agree s_slow s_auto) then
              Alcotest.failf "corpus seed %d on %s: frame and slow outcomes differ"
                seed bname;
            if s_auto.Noise.frame_attempts = 0 then
              Alcotest.failf
                "corpus seed %d on %s: frame engine never engaged (reasons: %s)" seed
                bname
                (String.concat "; " s_auto.Noise.fallback_reasons))
          backends)
      [ circuit_plain ~n gs; circuit_ancilla ~n gs gs2; circuit_measure ~n gs ]
  done;
  check "corpus has at least 100 circuits" true (!circuits >= 100)

(* Same acceptance for fault injection: every (site, pauli) classified
   identically by one frame pass and by per-fault re-simulation, under
   both backends' masked-fault semantics. *)
let test_corpus_inject_bit_identical () =
  let n = 3 in
  for seed = 1 to 12 do
    let rng = Rng.create (100 + seed) in
    let len = 3 + Rng.int rng 6 in
    let gs = rand_gates rng ~n ~len in
    let inputs = List.init n (fun _ -> Rng.int rng 2 = 1) in
    List.iter
      (fun b ->
        List.iter
          (fun (bname, backend) ->
            let r_slow = Inject.report_on backend ~seed:3 ~engine:`Slow b inputs in
            let r_auto = Inject.report_on backend ~seed:3 ~engine:`Auto b inputs in
            if r_slow.Inject.findings <> r_auto.Inject.findings then
              Alcotest.failf "inject seed %d on %s: classifications differ" seed bname;
            check "frame classified most faults" true
              (r_auto.Inject.frame_faults > 0);
            check "counts agree" true
              (r_slow.Inject.detected = r_auto.Inject.detected
              && r_slow.Inject.corrupted = r_auto.Inject.corrupted
              && r_slow.Inject.masked = r_auto.Inject.masked))
          backends)
      [ circuit_plain ~n gs; circuit_measure ~n gs ]
  done

(* Graceful degradation: a non-Clifford gate makes the campaign fall
   back wholesale, outcomes still bit-identical, and the report names
   the offending gate — mirroring the clifford backend's rejections. *)
let test_fallback_names_the_gate () =
  let b, _ =
    Circ.generate ~in_:(Qdata.list_of 2 Qdata.qubit) (fun ql ->
        let qs = Array.of_list ql in
        let* _ = gate_T qs.(0) in
        let* () = cnot ~control:qs.(0) ~target:qs.(1) in
        return ql)
  in
  let inputs = [ false; false ] in
  let run engine =
    Noise.run_trials_on
      (module Backend.Statevector)
      ~master_seed:5 ~engine ~trials:8 ~max_failures:1 (Noise.depolarizing 0.02) b
      inputs ~expected:inputs
  in
  let s_slow = run `Slow and s_auto = run `Auto in
  check "ineligible circuit still bit-identical" true (stats_agree s_slow s_auto);
  check "every attempt fell back to the slow path" true
    (s_auto.Noise.frame_attempts = 0 && s_auto.Noise.slow_attempts = s_auto.Noise.attempts);
  check "the fallback reason names the T gate" true
    (List.exists (fun r -> contains r "T") s_auto.Noise.fallback_reasons)

let test_inject_fallback_names_the_gate () =
  let b, _ =
    Circ.generate ~in_:(Qdata.list_of 2 Qdata.qubit) (fun ql ->
        let qs = Array.of_list ql in
        let* () = rot_Z 0.3 qs.(0) in
        let* () = cnot ~control:qs.(0) ~target:qs.(1) in
        return ql)
  in
  let inputs = [ true; false ] in
  let r_slow =
    Inject.report_on (module Backend.Statevector) ~engine:`Slow b inputs
  in
  let r_auto =
    Inject.report_on (module Backend.Statevector) ~engine:`Auto b inputs
  in
  check "findings identical under wholesale fallback" true
    (r_slow.Inject.findings = r_auto.Inject.findings);
  check "all faults took the slow path" true
    (r_auto.Inject.frame_faults = 0 && r_auto.Inject.slow_faults = r_auto.Inject.faults);
  check "the report names the rotation" true
    (List.exists (fun r -> contains r "Rz") r_auto.Inject.fallback_reasons)

(* Streaming: the frame pass consumed as a Sink.t over run_streaming
   sees exactly the gates the materialized pass sees. *)
let test_noise_sink_matches_pass () =
  let n = 3 in
  let rng = Rng.create 5 in
  let gs = rand_gates rng ~n ~len:10 in
  let f ql =
    let qs = Array.of_list ql in
    let* () = sandwich gs qs in
    return ql
  in
  let b, _ = Circ.generate ~in_:(Qdata.list_of n Qdata.qubit) f in
  let inputs = [ true; false; true ] in
  let seeds = Array.init 70 (fun i -> 50 + i) in
  let ch =
    { Frame.bit_flip = 0.02; phase_flip = 0.0; depolarizing = 0.05; readout = 0.01 }
  in
  let r_stream, _ =
    Circ.run_streaming ~in_:(Qdata.list_of n Qdata.qubit) f
      (Frame.noise_sink ch ~inputs ~seeds ())
  in
  let r_mat = Frame.noise_pass ch (Circuit.inline b) inputs ~seeds in
  for l = 0 to Array.length seeds - 1 do
    if Frame.lane_outcome r_stream l <> Frame.lane_outcome r_mat l then
      Alcotest.failf "lane %d: streamed and materialized passes disagree" l
  done

(* ------------------------------------------------------------------ *)
(* The repetition-code workload                                        *)

let test_repcode_shape () =
  let p = { R.distance = 5; rounds = 2 } in
  let b = R.generate ~p () in
  let flat = Circuit.inline b in
  check "no inputs" true (flat.Circuit.inputs = []);
  check "output arity" true
    (List.length flat.Circuit.outputs = R.output_bits p);
  check "all outputs classical" true
    (List.for_all
       (fun (e : Wire.endpoint) -> e.Wire.ty = Wire.C)
       flat.Circuit.outputs)

let test_repcode_frame_matches_slow () =
  List.iter
    (fun d ->
      let p = { R.distance = d; rounds = d } in
      let run engine =
        R.run_point ~master_seed:17 ~engine ~p ~physical:0.02 ~trials:400 ()
      in
      let fast = run `Frame and slow = run `Slow in
      check "logical errors identical" true
        (fast.R.pt_logical_errors = slow.R.pt_logical_errors);
      check "tripped identical" true (fast.R.pt_tripped = slow.R.pt_tripped);
      check "errored identical" true (fast.R.pt_errored = slow.R.pt_errored);
      check "frame engine carried the trials" true (fast.R.pt_frame_trials = 400))
    [ 3; 5 ]

let test_repcode_sample_outcomes_identical () =
  (* per-trial sampled outputs, not just aggregates, bit for bit *)
  let p = { R.distance = 3; rounds = 3 } in
  let b = R.generate ~p () in
  let cfg = Noise.depolarizing 0.03 in
  let collect engine =
    let out = Array.make 300 None in
    let _ =
      Noise.sample_trials_on
        (module Backend.Clifford)
        ~master_seed:23 ~engine ~trials:300 cfg b []
        ~f:(fun t s -> out.(t) <- Some s)
    in
    out
  in
  check "every sampled trial identical" true (collect `Frame = collect `Slow)

let suite =
  [
    Alcotest.test_case "corpus: trials bit-identical frame vs slow" `Quick
      test_corpus_trials_bit_identical;
    Alcotest.test_case "corpus: inject bit-identical frame vs slow" `Quick
      test_corpus_inject_bit_identical;
    Alcotest.test_case "fallback: trial campaign names the gate" `Quick
      test_fallback_names_the_gate;
    Alcotest.test_case "fallback: inject campaign names the gate" `Quick
      test_inject_fallback_names_the_gate;
    Alcotest.test_case "streaming: noise sink matches materialized pass" `Quick
      test_noise_sink_matches_pass;
    Alcotest.test_case "repcode: circuit shape" `Quick test_repcode_shape;
    Alcotest.test_case "repcode: frame matches slow" `Quick
      test_repcode_frame_matches_slow;
    Alcotest.test_case "repcode: per-trial samples identical" `Quick
      test_repcode_sample_outcomes_identical;
  ]
