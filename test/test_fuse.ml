(* Differential and mechanics tests for the gate-fusion compiler
   ([Quipper_sim.Fuse]).

   Fusion multiplies the same per-gate matrices in a different
   association order, so fused amplitudes are NOT bit-identical to the
   unfused engine — the properties budget a 1e-9 max deviation for the
   float reassociation. Classical observations (measured bits), by
   contrast, must be bit-identical at equal seeds: sampling runs in the
   statevector engine on the flushed state, with the same sequential
   probability reductions and the same RNG stream, and a divergence
   would need a Born probability within reassociation distance
   (~1e-15) of the RNG draw. *)

open Quipper
open Circ
module Gen = Quipper_testgen.Gen
module Backend = Quipper_sim.Backend
module Sv = Quipper_sim.Statevector
module Fuse = Quipper_sim.Fuse

let check = Alcotest.(check bool)
let inputs_gen n = QCheck2.Gen.(list_repeat n bool)

(* max componentwise deviation between two amplitude vectors *)
let max_dev (a : Quipper_math.Cplx.t array) (b : Quipper_math.Cplx.t array) =
  let open Quipper_math in
  let d = ref 0.0 in
  Array.iteri
    (fun i x ->
      let e = Cplx.norm (Cplx.sub x b.(i)) in
      if e > !d then d := e)
    a;
  !d

let amp_close eps a b = Array.length a = Array.length b && max_dev a b <= eps

(* ------------------------------------------------------------------ *)
(* Differential property: 200 random circuits                          *)

(* Random programs (superposition gates, negative controls, controlled
   blocks, ancilla compute/uncompute sandwiches — so Init/Term barriers
   land mid-stream) run fused and unfused: amplitudes within 1e-9,
   measured output bits identical. *)
let prop_fused_vs_unfused =
  let n = 5 in
  QCheck2.Test.make
    ~name:"fused vs unfused: amplitudes within 1e-9, bits identical (200)"
    ~count:200
    QCheck2.Gen.(pair (Gen.program_gen ~n ()) (inputs_gen n))
    (fun (ops, inputs) ->
      let b = Gen.circuit_of_program ~n ops in
      let sv = Sv.run_circuit ~seed:11 b inputs in
      let fu = Fuse.run_circuit ~seed:11 b inputs in
      amp_close 1e-9 (Sv.amplitudes sv) (Fuse.amplitudes fu)
      && Backend.run_and_measure (module Backend.Statevector) ~seed:11 b inputs
         = Backend.run_and_measure (module Backend.Fused) ~seed:11 b inputs)

(* The streaming path: [Backend.fused_sink] fed by [Circ.run_streaming]
   must land on the same state as the unfused materialized run. *)
let prop_streamed_fused =
  let n = 5 in
  QCheck2.Test.make ~name:"streamed fused simulation matches unfused" ~count:50
    QCheck2.Gen.(pair (Gen.program_gen ~n ()) (inputs_gen n))
    (fun (ops, inputs) ->
      let shape = Qdata.list_of n Qdata.qubit in
      let b = Gen.circuit_of_program ~n ops in
      let sv = Sv.run_circuit ~seed:3 b inputs in
      let obs, _ =
        Circ.run_streaming ~in_:shape (Gen.program_fun ops)
          (Backend.fused_sink ~seed:3 ~inputs ())
      in
      match obs with
      | Backend.Obs_amplitudes a -> amp_close 1e-9 a (Sv.amplitudes sv)
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* The box-compilation cache                                           *)

(* A hierarchical program over 4 qubits: a random 2-qubit body boxed
   once, then called plainly, under a quantum control, inverted (via
   the with_computed sandwich) and plainly again — so the cache serves
   forward, controlled and inverse calls of the same compilation. *)
let boxed_fun ops ql =
  match ql with
  | [ a; b; c; d ] ->
      let shape2 = Qdata.list_of 2 Qdata.qubit in
      let call xs = box "body" ~in_:shape2 ~out:shape2 (Gen.program_fun ops) xs in
      let* ab = call [ a; b ] in
      let a, b = (List.nth ab 0, List.nth ab 1) in
      let* cd = with_controls [ ctl a ] (call [ c; d ]) in
      let c, d = (List.nth cd 0, List.nth cd 1) in
      let* b =
        with_computed (call [ c; d ]) (fun cd' ->
            let* () = cnot ~control:(List.hd cd') ~target:b in
            return b)
      in
      let* ab = call [ a; b ] in
      let a, b = (List.nth ab 0, List.nth ab 1) in
      return [ a; b; c; d ]
  | _ -> assert false

let prop_boxed_cache =
  QCheck2.Test.make
    ~name:"box cache: forward/controlled/inverse calls replay compiled blocks"
    ~count:60
    QCheck2.Gen.(pair (Gen.program_gen ~n:2 ~max_ops:8 ()) (inputs_gen 4))
    (fun (ops, inputs) ->
      let shape = Qdata.list_of 4 Qdata.qubit in
      let b, _ = Circ.generate ~in_:shape (boxed_fun ops) in
      let sv = Sv.run_circuit ~seed:5 b inputs in
      let reference = Sv.amplitudes sv in
      (* cached replay *)
      let fu = Fuse.run_circuit ~seed:5 b inputs in
      let st = Fuse.stats fu in
      (* structural expansion (cache off) must agree too *)
      let nocache = { Fuse.default_config with Fuse.cache = false } in
      let fu2 = Fuse.run_circuit ~config:nocache ~seed:5 b inputs in
      (* streaming: definitions arrive via on_subroutine_exit *)
      let obs, _ =
        Circ.run_streaming ~in_:shape (boxed_fun ops)
          (Backend.fused_sink ~seed:5 ~inputs ())
      in
      amp_close 1e-9 reference (Fuse.amplitudes fu)
      && amp_close 1e-9 reference (Fuse.amplitudes fu2)
      && (match obs with
         | Backend.Obs_amplitudes a -> amp_close 1e-9 reference a
         | _ -> false)
      (* 5 call gates (the with_computed sandwich emits the call and its
         inverse) served by at most 2 compilations (forward + inverse) *)
      && st.Fuse.calls_replayed = 5
      && st.Fuse.boxes_compiled >= 1
      && st.Fuse.boxes_compiled <= 2)

(* ------------------------------------------------------------------ *)
(* Fusion mechanics                                                    *)

(* A purely diagonal run over 6 wires — wider than the dense window
   (4) but inside the diagonal window (8) — must collapse into exactly
   one fused block, and still match the unfused engine. *)
let test_diag_run_one_block () =
  let shape = Qdata.list_of 6 Qdata.qubit in
  let prog ql =
    match ql with
    | [ a; b; c; d; e; f ] ->
        let* _ = gate_T a in
        let* _ = gate_S b in
        let* _ = gate_Z c in
        let* () = rot_Z 0.3 d in
        let* () = gate_R 3 e in
        let* () =
          with_controls [ ctl e ]
            (let* _ = gate_Z f in
             return ())
        in
        let* () = rot_expZt 0.7 a in
        return ql
    | _ -> assert false
  in
  let input = [ true; false; true; true; false; true ] in
  let svst, _ = Sv.run_fun ~in_:shape input prog in
  let fust, _ = Fuse.run_fun ~in_:shape input prog in
  check "diagonal run matches unfused" true
    (amp_close 1e-9 (Sv.amplitudes svst) (Fuse.amplitudes fust));
  let st = Fuse.stats fust in
  check "one fused block" true (st.Fuse.blocks_applied = 1);
  check "all 7 gates fused" true (st.Fuse.gates_fused = 7);
  check "only the 6 Inits went through per-gate kernels" true
    (st.Fuse.singles_applied = 6)

(* A dense run long enough to amortize the 2^k kernel and confined to 2
   wires fuses to one block; a short run spread over more wires than
   the window is costed out of fusion entirely (the gates replay
   through their specialised kernels) yet still simulates correctly. *)
let test_dense_window () =
  let shape = Qdata.list_of 5 Qdata.qubit in
  let narrow ql =
    match ql with
    | a :: b :: _ ->
        let rec go n a b =
          if n = 0 then return ql
          else
            let* a = hadamard a in
            let* _ = gate_T a in
            let* () = cnot ~control:a ~target:b in
            let* b = hadamard b in
            go (n - 1) a b
        in
        go 4 a b
    | _ -> assert false
  in
  let wide ql =
    match ql with
    | [ a; b; c; d; e ] ->
        let* a = hadamard a in
        let* b = hadamard b in
        let* _ = hadamard c in
        let* _ = hadamard d in
        let* _ = hadamard e in
        let* () = cnot ~control:a ~target:b in
        return ql
    | _ -> assert false
  in
  let input = [ true; false; false; true; false ] in
  let svn, _ = Sv.run_fun ~in_:shape input narrow in
  let fn, _ = Fuse.run_fun ~in_:shape input narrow in
  check "narrow dense run matches unfused" true
    (amp_close 1e-9 (Sv.amplitudes svn) (Fuse.amplitudes fn));
  check "narrow dense run is one block" true
    ((Fuse.stats fn).Fuse.blocks_applied = 1);
  check "all 16 narrow gates fused" true ((Fuse.stats fn).Fuse.gates_fused = 16);
  let svw, _ = Sv.run_fun ~in_:shape input wide in
  let fw, _ = Fuse.run_fun ~in_:shape input wide in
  check "wide run matches unfused" true
    (amp_close 1e-9 (Sv.amplitudes svw) (Fuse.amplitudes fw));
  check "short wide run is costed out of fusion" true
    ((Fuse.stats fw).Fuse.blocks_applied = 0)

(* A block that ends up holding a single gate must go through the
   specialised per-gate kernels, not a dense 2^k matrix. *)
let test_single_gate_fallback () =
  let shape = Qdata.list_of 2 Qdata.qubit in
  let prog ql =
    match ql with
    | [ a; _ ] ->
        let* _ = hadamard a in
        return ql
    | _ -> assert false
  in
  let fu, _ = Fuse.run_fun ~in_:shape [ false; false ] prog in
  let st = Fuse.stats fu in
  check "no fused block for a lone gate" true (st.Fuse.blocks_applied = 0);
  check "the gate (and the 2 Inits) used per-gate kernels" true
    (st.Fuse.singles_applied = 3)

(* Sampling: measured bits must be identical at equal seeds even on
   genuinely probabilistic outcomes (H then measure), across a range of
   seeds. Deterministic: if it passes once it passes forever. *)
let test_sampling_identical () =
  let b =
    Gen.circuit_of_program ~n:3
      [ Gen.H 0; Gen.CNot (0, 1); Gen.T 1; Gen.H 2; Gen.S 2; Gen.CNot (2, 0) ]
  in
  let inputs = [ false; true; false ] in
  for seed = 0 to 19 do
    check "fused sampling matches unfused at equal seed" true
      (Backend.run_and_measure (module Backend.Statevector) ~seed b inputs
      = Backend.run_and_measure (module Backend.Fused) ~seed b inputs)
  done

let suite =
  [
    QCheck_alcotest.to_alcotest prop_fused_vs_unfused;
    QCheck_alcotest.to_alcotest prop_streamed_fused;
    QCheck_alcotest.to_alcotest prop_boxed_cache;
    Alcotest.test_case "diagonal run fuses to one block" `Quick
      test_diag_run_one_block;
    Alcotest.test_case "dense fusion window" `Quick test_dense_window;
    Alcotest.test_case "single-gate fallback" `Quick test_single_gate_fallback;
    Alcotest.test_case "sampling bit-identical across seeds" `Quick
      test_sampling_identical;
  ]
