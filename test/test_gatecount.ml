(* Tests for the hierarchical resource counter — the machinery behind the
   paper's trillion-gate counts (4.4.4, 5.4). *)

open Quipper
module Gen = Quipper_testgen.Gen
open Circ

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* exponential blowup: box k calls box (k-1) twice *)
let rec tower k q =
  if k = 0 then hadamard q
  else
    box (Fmt.str "tower%d" k) ~in_:Qdata.qubit ~out:Qdata.qubit
      (fun q ->
        let* q = tower (k - 1) q in
        tower (k - 1) q)
      q

let test_exponential_counting () =
  let b = fst (Circ.generate ~in_:Qdata.qubit (tower 40)) in
  let counts = Gatecount.aggregate b in
  (* 2^40 Hadamards, counted without inlining *)
  checki "2^40 hadamards" (1 lsl 40) (Gatecount.find_kind counts "H");
  (* the materialised representation stays tiny *)
  check "small representation" true (List.length b.Circuit.sub_order = 40)

let test_trillions_fast () =
  let t0 = Sys.time () in
  let b = fst (Circ.generate ~in_:Qdata.qubit (tower 45)) in
  let counts = Gatecount.aggregate b in
  let elapsed = Sys.time () -. t0 in
  checki "2^45 = 35 trillion gates" (1 lsl 45) (Gatecount.total counts);
  check "counted in well under a second" true (elapsed < 1.0)

let test_inverse_subroutine_counts () =
  (* a box containing Init/T: its inverse counts Term/T* *)
  let sub =
    box "itsub" ~in_:Qdata.qubit ~out:(Qdata.pair Qdata.qubit Qdata.qubit)
      (fun q ->
        let* a = qinit_bit false in
        let* a = gate_T a in
        return (q, a))
  in
  let b =
    fst
      (Circ.generate ~in_:Qdata.qubit (fun q ->
           let* q, a = sub q in
           (* uncompute via the reversed function *)
           let* q =
             reverse_fun ~in_:Qdata.qubit ~out:(Qdata.pair Qdata.qubit Qdata.qubit)
               sub (q, a)
           in
           return q))
  in
  let counts = Gatecount.aggregate b in
  checki "one init" 1 (Gatecount.find_kind counts "Init0");
  checki "one term" 1 (Gatecount.find_kind counts "Term0");
  checki "one T" 1
    (Gatecount.get counts
       { Gatecount.kind = "T"; inverted = false; pos_controls = 0; neg_controls = 0 });
  checki "one T*" 1
    (Gatecount.get counts
       { Gatecount.kind = "T"; inverted = true; pos_controls = 0; neg_controls = 0 })

let test_controlled_call_counts () =
  (* a controlled subroutine call adds the control to every body gate *)
  let sub =
    box "csub" ~in_:Qdata.qubit ~out:Qdata.qubit (fun q ->
        let* q = hadamard q in
        let* () = qnot_ q in
        return q)
  in
  let b =
    fst
      (Circ.generate ~in_:(Qdata.pair Qdata.qubit Qdata.qubit) (fun (c, q) ->
           with_controls [ ctl c ] (sub q)))
  in
  let counts = Gatecount.aggregate b in
  checki "controlled H" 1
    (Gatecount.get counts
       { Gatecount.kind = "H"; inverted = false; pos_controls = 1; neg_controls = 0 });
  checki "controlled not" 1
    (Gatecount.get counts
       { Gatecount.kind = "Not"; inverted = false; pos_controls = 1; neg_controls = 0 })

let test_peak_wires_hierarchical () =
  (* a subroutine that needs 3 local ancillas at once: peak = caller live +
     callee peak *)
  let sub =
    box "wide" ~in_:Qdata.qubit ~out:Qdata.qubit (fun q ->
        with_ancilla_init [ false; false; false ] (fun _ancs -> return q))
  in
  let b =
    fst
      (Circ.generate ~in_:(Qdata.pair Qdata.qubit Qdata.qubit) (fun (a, q) ->
           let* q = sub q in
           return (a, q)))
  in
  (* 2 inputs live + 3 ancillas inside the call *)
  checki "peak" 5 (Gatecount.peak_wires b)

let test_peak_wires_flat () =
  let b =
    fst
      (Circ.generate_unit
         (let* a = qinit_bit false in
          let* b = qinit_bit false in
          let* () = qterm_bit false b in
          let* c = qinit_bit false in
          let* () = qterm_bit false c in
          qterm_bit false a))
  in
  checki "flat peak" 2 (Gatecount.peak_wires b)

let test_summary_fields () =
  let b =
    fst
      (Circ.generate ~in_:Qdata.qubit (fun q ->
           let* q = hadamard q in
           let* m = measure_qubit q in
           return m))
  in
  let s = Gatecount.summarize b in
  checki "total" 2 s.Gatecount.total;
  checki "logical excludes meas" 1 s.Gatecount.total_logical;
  checki "inputs" 1 s.Gatecount.inputs;
  checki "outputs" 1 s.Gatecount.outputs

let test_quipper_print_format () =
  let b =
    fst
      (Circ.generate ~in_:(Qdata.triple Qdata.qubit Qdata.qubit Qdata.qubit)
         (fun (a, b, c) ->
           let* () = qnot_ c |> controlled [ ctl a; ctl_neg b ] in
           return (a, b, c)))
  in
  let s = Fmt.str "%a" Gatecount.pp (Gatecount.aggregate b) in
  check "a+b control format" true (Astring_contains.contains s "\"Not\", controls 1+1")

(* Golden output: the full summary block for a paper algorithm circuit
   (BWT with the orthodox oracle at the default n=3, s=1), pinned
   verbatim. Catches any drift in counting or in Quipper's format. *)
let test_summary_golden () =
  let p = { Algo_bwt.default_params with Algo_bwt.n = 3; s = 1 } in
  let b = Algo_bwt.generate ~p ~which:`Orthodox () in
  let got = Fmt.str "%a" Gatecount.pp_summary (Gatecount.summarize b) in
  let expected =
    String.concat "\n"
      [
        "Aggregated gate count:";
        "37: \"Init0\"";
        "1: \"Init1\"";
        "6: \"Meas\"";
        "12: \"Not\"";
        "4: \"Not\", controls 0+1";
        "2: \"Not\", controls 0+5";
        "42: \"Not\", controls 1";
        "88: \"Not\", controls 1+1";
        "32: \"Term0\"";
        "24: \"W\"";
        "24: \"W*\"";
        "4: \"exp(-i%Z)\", controls 0+1";
        "Total gates: 276";
        "Inputs: 0";
        "Outputs: 6";
        "Qubits in circuit: 14";
      ]
  in
  Alcotest.(check string) "golden BWT orthodox summary" expected (String.trim got)

(* Same idea for three more paper algorithms, at sizes small enough to
   keep [dune runtest] fast: the TF pow17 arithmetic subroutine, the BF
   oracle on a 3x3 board, and the USV phase-estimation skeleton. *)
let check_golden name b expected_lines =
  let got = Fmt.str "%a" Gatecount.pp_summary (Gatecount.summarize b) in
  Alcotest.(check string) name (String.concat "\n" expected_lines) (String.trim got)

let test_summary_golden_tf () =
  check_golden "golden TF pow17 summary"
    (Algo_tf.Qwtfp.generate_pow17 ())
    [
      "Aggregated gate count:";
      "808: \"Init0\"";
      "604: \"Not\", controls 1";
      "2592: \"Not\", controls 2";
      "804: \"Term0\"";
      "Total gates: 4808";
      "Inputs: 4";
      "Outputs: 8";
      "Qubits in circuit: 56";
    ]

let test_summary_golden_bf () =
  check_golden "golden BF oracle summary"
    (Algo_bf.generate_oracle ~board:{ Algo_bf.width = 3; height = 3 } ())
    [
      "Aggregated gate count:";
      "90: \"Init0\"";
      "290: \"Init1\"";
      "580: \"Not\", controls 0+2";
      "7: \"Not\", controls 1";
      "162: \"Not\", controls 2";
      "90: \"Term0\"";
      "290: \"Term1\"";
      "Total gates: 1509";
      "Inputs: 10";
      "Outputs: 10";
      "Qubits in circuit: 390";
    ]

let test_summary_golden_usv () =
  check_golden "golden USV summary"
    (Algo_usv.generate ())
    [
      "Aggregated gate count:";
      "12: \"H\"";
      "6: \"Init0\"";
      "1: \"Init1\"";
      "6: \"Meas\"";
      "27: \"Rz\", controls 1";
      "1: \"Term1\"";
      "Total gates: 53";
      "Inputs: 0";
      "Outputs: 6";
      "Qubits in circuit: 7";
    ]

let prop_aggregate_equals_inline =
  QCheck2.Test.make ~name:"aggregate counts = inlined counts (random circuits)"
    ~count:60 (Gen.program_gen ~n:4 ())
    (fun ops ->
      let b = Gen.circuit_of_program ~n:4 ops in
      let agg = Gatecount.aggregate b in
      let flat = Gatecount.shallow (Circuit.inline b) in
      Gatecount.Counts.equal ( = ) agg flat)

let suite =
  [
    Alcotest.test_case "exponential aggregate counting" `Quick test_exponential_counting;
    Alcotest.test_case "trillions counted fast" `Quick test_trillions_fast;
    Alcotest.test_case "inverse subroutine counts" `Quick test_inverse_subroutine_counts;
    Alcotest.test_case "controlled call counts" `Quick test_controlled_call_counts;
    Alcotest.test_case "hierarchical peak wires" `Quick test_peak_wires_hierarchical;
    Alcotest.test_case "flat peak wires" `Quick test_peak_wires_flat;
    Alcotest.test_case "summary fields" `Quick test_summary_fields;
    Alcotest.test_case "Quipper count format" `Quick test_quipper_print_format;
    Alcotest.test_case "golden summary (BWT orthodox)" `Quick test_summary_golden;
    Alcotest.test_case "golden summary (TF pow17)" `Quick test_summary_golden_tf;
    Alcotest.test_case "golden summary (BF oracle 3x3)" `Quick test_summary_golden_bf;
    Alcotest.test_case "golden summary (USV)" `Quick test_summary_golden_usv;
    QCheck_alcotest.to_alcotest prop_aggregate_equals_inline;
  ]
