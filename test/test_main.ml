(* Test runner: every suite in one alcotest binary ([dune runtest]). *)

let () =
  Alcotest.run "quipper"
    [
      ("math", Test_math.suite);
      ("core", Test_core.suite);
      ("gatecount", Test_gatecount.suite);
      ("transform", Test_transform.suite);
      ("sim", Test_sim.suite);
      ("template", Test_template.suite);
      ("arith", Test_arith.suite);
      ("primitives", Test_primitives.suite);
      ("algorithms", Test_algorithms.suite);
      ("depth", Test_depth.suite);
      ("parser", Test_parser.suite);
      ("allocate", Test_allocate.suite);
      ("alternatives", Test_alternatives.suite);
      ("noise", Test_noise.suite);
      ("differential", Test_differential.suite);
      ("backend", Test_backend.suite);
      ("opt", Test_opt.suite);
      ("stream_opt", Test_stream_opt.suite);
      ("stream", Test_stream.suite);
      ("fuse", Test_fuse.suite);
      ("frame", Test_frame.suite);
      ("serve", Test_serve.suite);
      ("sweep", Test_sweep.suite);
      ("estimate", Test_estimate.suite);
    ]
