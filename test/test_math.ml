(* Unit and property tests for the math substrate. *)

open Quipper_math

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Cplx *)

let test_cplx_basic () =
  check "one * i = i" true Cplx.(equal (mul one i) i);
  check "i * i = -1" true Cplx.(equal (mul i i) (of_float (-1.0)));
  check "conj i = -i" true Cplx.(equal (conj i) (neg i));
  check "norm2 of 3+4i" true (Float.abs (Cplx.norm2 (Cplx.make 3.0 4.0) -. 25.0) < 1e-12);
  check "cis pi = -1" true Cplx.(equal ~eps:1e-12 (cis Float.pi) (of_float (-1.0)))

let test_cplx_div () =
  let a = Cplx.make 3.0 4.0 and b = Cplx.make 1.0 (-2.0) in
  check "a/b*b = a" true Cplx.(equal ~eps:1e-12 (mul (div a b) b) a)

let cplx_arb =
  QCheck2.Gen.(map2 Cplx.make (float_range (-10.0) 10.0) (float_range (-10.0) 10.0))

let prop_cplx_mul_comm =
  QCheck2.Test.make ~name:"cplx multiplication commutes" ~count:200
    QCheck2.Gen.(pair cplx_arb cplx_arb)
    (fun (a, b) -> Cplx.equal ~eps:1e-9 (Cplx.mul a b) (Cplx.mul b a))

let prop_cplx_conj_mul =
  QCheck2.Test.make ~name:"conj distributes over mul" ~count:200
    QCheck2.Gen.(pair cplx_arb cplx_arb)
    (fun (a, b) ->
      Cplx.equal ~eps:1e-9 (Cplx.conj (Cplx.mul a b)) (Cplx.mul (Cplx.conj a) (Cplx.conj b)))

(* ------------------------------------------------------------------ *)
(* Bitvec *)

let test_bitvec_roundtrip () =
  for v = 0 to 255 do
    checki "int roundtrip" v Bitvec.(to_int (of_int ~width:8 v))
  done

let test_bitvec_ops () =
  let a = Bitvec.of_int ~width:8 0b10110100 in
  let b = Bitvec.of_int ~width:8 0b01010101 in
  checki "xor" (0b10110100 lxor 0b01010101) Bitvec.(to_int (logxor a b));
  checki "and" (0b10110100 land 0b01010101) Bitvec.(to_int (logand a b));
  checki "or" (0b10110100 lor 0b01010101) Bitvec.(to_int (logor a b));
  checki "popcount" 4 (Bitvec.popcount a);
  check "parity" true (Bitvec.parity a = (Bitvec.popcount a mod 2 = 1))

let test_bitvec_rotate () =
  let a = Bitvec.of_int ~width:5 0b10011 in
  checki "rotl 1" 0b00111 Bitvec.(to_int (rotate_left a 1));
  checki "rotl 5 = id" 0b10011 Bitvec.(to_int (rotate_left a 5));
  checki "rotl -1 = rotl 4" Bitvec.(to_int (rotate_left a 4)) Bitvec.(to_int (rotate_left a (-1)))

let prop_bitvec_rotate_inverse =
  QCheck2.Test.make ~name:"rotate_left k then -k is identity" ~count:200
    QCheck2.Gen.(pair (int_range 0 1023) (int_range 1 20))
    (fun (v, k) ->
      let a = Bitvec.of_int ~width:10 v in
      Bitvec.equal a (Bitvec.rotate_left (Bitvec.rotate_left a k) (-k)))

let prop_bitvec_append_sub =
  QCheck2.Test.make ~name:"append then sub recovers halves" ~count:200
    QCheck2.Gen.(pair (int_range 0 255) (int_range 0 255))
    (fun (x, y) ->
      let a = Bitvec.of_int ~width:8 x and b = Bitvec.of_int ~width:8 y in
      let c = Bitvec.append a b in
      Bitvec.equal a (Bitvec.sub c 0 8) && Bitvec.equal b (Bitvec.sub c 8 8))

(* ------------------------------------------------------------------ *)
(* Mat2 *)

let test_mat2_unitaries () =
  let open Mat2 in
  check "H^2 = I" true (equal (mul hadamard hadamard) (identity 2));
  check "X^2 = I" true (equal (mul pauli_x pauli_x) (identity 2));
  check "S^2 = Z" true (equal (mul phase_s phase_s) pauli_z);
  check "T^2 = S" true (equal ~eps:1e-9 (mul phase_t phase_t) phase_s);
  check "V^2 = X" true (equal ~eps:1e-9 (mul sqrt_not sqrt_not) pauli_x);
  check "W^2 = I" true (equal ~eps:1e-9 (mul w_gate w_gate) (identity 4));
  check "HXH = Z" true (equal ~eps:1e-9 (mul hadamard (mul pauli_x hadamard)) pauli_z)

let test_mat2_adjoint_unitary () =
  List.iter
    (fun (name, m) ->
      let open Mat2 in
      Alcotest.(check bool) (name ^ " is unitary") true
        (equal ~eps:1e-9 (mul m (adjoint m)) (identity (dim m))))
    [ ("H", Mat2.hadamard); ("S", Mat2.phase_s); ("T", Mat2.phase_t);
      ("V", Mat2.sqrt_not); ("W", Mat2.w_gate); ("Rz", Mat2.rot_z 0.7);
      ("Rx", Mat2.rot_x 1.3); ("expZt", Mat2.exp_minus_izt 0.4) ]

let test_mat2_phase_equal () =
  let open Mat2 in
  let m = smul (Quipper_math.Cplx.cis 0.8) hadamard in
  check "equal up to phase" true (equal_up_to_phase m hadamard);
  check "not equal exactly" false (equal m hadamard);
  check "X and Z differ" false (equal_up_to_phase pauli_x pauli_z)

let test_mat2_kron () =
  let open Mat2 in
  let xi = kron pauli_x (identity 2) in
  Alcotest.(check int) "kron dim" 4 (dim xi);
  check "kron entry" true (Quipper_math.Cplx.equal (get xi 0 2) Quipper_math.Cplx.one)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check "same stream" true (Rng.float a = Rng.float b)
  done

let test_rng_int_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_range () =
  let r = Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Rng.float r in
    check "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_split () =
  (* splitting is deterministic, distinct indices give distinct streams,
     and splitting leaves the parent stream untouched *)
  let parent = Rng.create 42 in
  let a = Rng.split parent 0 and a' = Rng.split parent 0 in
  let b = Rng.split parent 1 in
  check "split deterministic" true (Rng.float a = Rng.float a');
  check "distinct indices diverge" true (Rng.float (Rng.split parent 0) <> Rng.float b);
  let fresh = Rng.create 42 in
  for _ = 1 to 50 do
    check "parent untouched by split" true (Rng.float parent = Rng.float fresh)
  done

let test_rng_derive () =
  check "derive deterministic" true (Rng.derive 7 3 = Rng.derive 7 3);
  check "derive distinct indices" true (Rng.derive 7 3 <> Rng.derive 7 4);
  check "derive distinct masters" true (Rng.derive 7 3 <> Rng.derive 8 3);
  check "derive non-negative" true
    (List.for_all (fun i -> Rng.derive 123 i >= 0) [ 0; 1; 2; 3; 100; 1000 ])

let suite =
  [
    Alcotest.test_case "cplx basics" `Quick test_cplx_basic;
    Alcotest.test_case "cplx division" `Quick test_cplx_div;
    QCheck_alcotest.to_alcotest prop_cplx_mul_comm;
    QCheck_alcotest.to_alcotest prop_cplx_conj_mul;
    Alcotest.test_case "bitvec roundtrip" `Quick test_bitvec_roundtrip;
    Alcotest.test_case "bitvec logic ops" `Quick test_bitvec_ops;
    Alcotest.test_case "bitvec rotate" `Quick test_bitvec_rotate;
    QCheck_alcotest.to_alcotest prop_bitvec_rotate_inverse;
    QCheck_alcotest.to_alcotest prop_bitvec_append_sub;
    Alcotest.test_case "gate matrices" `Quick test_mat2_unitaries;
    Alcotest.test_case "adjoints / unitarity" `Quick test_mat2_adjoint_unitary;
    Alcotest.test_case "equality up to phase" `Quick test_mat2_phase_equal;
    Alcotest.test_case "kronecker product" `Quick test_mat2_kron;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng float range" `Quick test_rng_float_range;
    Alcotest.test_case "rng seed splitting" `Quick test_rng_split;
    Alcotest.test_case "rng seed derivation" `Quick test_rng_derive;
  ]
