(* Tests for the noise channels (Quipper_sim.Noise), the fault-injection
   engine (Quipper_sim.Inject) and the fault-site enumeration
   (Quipper.Faultsite): the stack that deliberately breaks circuits and
   checks that assertive termination detects what it claims to. *)

open Quipper
module Gen = Quipper_testgen.Gen
open Circ
module Sv = Quipper_sim.Statevector
module Noise = Quipper_sim.Noise
module Inject = Quipper_sim.Inject
module Qdint = Quipper_arith.Qdint
module Rng = Quipper_math.Rng

let check = Alcotest.(check bool)

(* the workhorse target: a 3-bit in-place adder — an arithmetic oracle
   with data wires, a carry ancilla and assertive terminations *)
let adder_shape = Qdata.pair (Qdint.shape 3) (Qdint.shape 3)

let adder_circuit () =
  let b, _ =
    Circ.generate ~in_:adder_shape (fun (x, y) ->
        let* () = Qdint.add_in_place ~x ~y () in
        return (x, y))
  in
  b

let adder_inputs x y = adder_shape.Qdata.bleaves (x, y)

(* ------------------------------------------------------------------ *)
(* Noise channels                                                      *)

let test_bit_flip_certain () =
  (* X gate then a certain bit-flip kick: net identity *)
  let b, _ =
    Circ.generate ~in_:Qdata.qubit (fun q ->
        let* () = qnot_ q in
        return q)
  in
  let clean = Sv.run_circuit ~seed:1 b [ false ] in
  let out = (List.hd b.Circuit.main.Circuit.outputs).Wire.wire in
  check "clean X flips" true (abs_float (Sv.prob_one clean out -. 1.0) < 1e-9);
  let noisy = Noise.run_circuit ~seed:1 (Noise.bit_flip 1.0) b [ false ] in
  check "noise X flips back" true (abs_float (Sv.prob_one noisy out) < 1e-9)

let test_noise_trips_assertion () =
  (* init |0>, certain bit-flip, assertively terminate at |0>: the
     extended model's check fires under noise *)
  let b, _ =
    Circ.generate ~in_:Qdata.qubit (fun q ->
        let* a = qinit_bit false in
        let* () = qterm_bit false a in
        return q)
  in
  match Noise.run_circuit ~seed:1 (Noise.bit_flip 1.0) b [ false ] with
  | exception Errors.Error (Errors.Termination_assertion _) -> ()
  | _ -> Alcotest.fail "expected the noisy run to trip the termination assertion"

let test_readout_error_certain () =
  let b, _ = Circ.generate ~in_:Qdata.qubit (fun q -> return q) in
  check "readout 1.0 always lies" true
    (Noise.run_and_measure ~seed:1 (Noise.readout 1.0) b [ true ] = [ false ]);
  check "readout 0.0 is faithful" true
    (Noise.run_and_measure ~seed:1 Noise.none b [ true ] = [ true ])

let prop_noiseless_is_bit_identical =
  (* all-zero probabilities: amplitude arrays equal to the bit, on random
     circuit programs (satellite acceptance: no perturbation at p = 0) *)
  QCheck2.Test.make ~name:"zero-probability noise config is bit-identical"
    ~count:30
    QCheck2.Gen.(pair (Gen.program_gen ~n:4 ()) (list_repeat 4 bool))
    (fun (ops, inputs) ->
      let b = Gen.circuit_of_program ~n:4 ops in
      let clean = Sv.run_circuit ~seed:3 b inputs in
      let noisy = Noise.run_circuit ~seed:3 Noise.none b inputs in
      Sv.amplitudes clean = Sv.amplitudes noisy)

(* ------------------------------------------------------------------ *)
(* Trial runner                                                        *)

let test_trials_clean_all_succeed () =
  let b = adder_circuit () in
  let s =
    Noise.run_trials ~master_seed:9 ~trials:10 ~max_failures:0 Noise.none b
      (adder_inputs 3 2) ~expected:(adder_inputs 3 5)
  in
  check "all succeed" true (s.Noise.successes = 10 && s.Noise.attempts = 10)

let test_trials_deterministic () =
  let b = adder_circuit () in
  let run () =
    Noise.run_trials ~master_seed:42 ~trials:40 ~max_failures:2
      (Noise.depolarizing 0.02) b (adder_inputs 3 2) ~expected:(adder_inputs 3 5)
  in
  let s1 = run () and s2 = run () in
  check "identical master seed => identical trial outcomes" true (s1 = s2);
  check "outcome classes partition the trials" true
    (s1.Noise.successes + s1.Noise.wrong + s1.Noise.gave_up + s1.Noise.errored
    = s1.Noise.trials);
  let s3 =
    Noise.run_trials ~master_seed:43 ~trials:40 ~max_failures:2
      (Noise.depolarizing 0.02) b (adder_inputs 3 2) ~expected:(adder_inputs 3 5)
  in
  check "a different master seed reshuffles the noise" true
    (s3.Noise.outcomes <> s1.Noise.outcomes)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)

let test_fault_sites_enumerated () =
  let b = adder_circuit () in
  let flat = Circuit.inline b in
  let sites = Faultsite.enumerate b in
  check "many sites" true (List.length sites > Array.length flat.Circuit.gates);
  (* every site points at a real gate (or an input) *)
  check "indices in range" true
    (List.for_all
       (fun (s : Faultsite.site) ->
         s.Faultsite.index >= -1 && s.Faultsite.index < Array.length flat.Circuit.gates)
       sites)

let test_fault_sites_recurse_into_boxes () =
  (* a boxed subroutine's internal gates must contribute sites tagged
     with the box's name *)
  let sub q =
    let* () = hadamard_ q in
    let* () = hadamard_ q in
    return q
  in
  let b, _ =
    Circ.generate ~in_:Qdata.qubit (fun q ->
        box "noisy_box" ~in_:Qdata.qubit ~out:Qdata.qubit sub q)
  in
  let sites = Faultsite.enumerate b in
  check "sites inside the box carry its path" true
    (List.exists (fun (s : Faultsite.site) -> s.Faultsite.path = [ "noisy_box" ]) sites)

let test_fault_report_all_classes () =
  let b = adder_circuit () in
  let r = Inject.report ~seed:1 b (adder_inputs 5 4) in
  check "faults = sites * 3" true (r.Inject.faults = 3 * r.Inject.sites);
  check "some faults detected" true (r.Inject.detected > 0);
  check "some faults corrupt silently" true (r.Inject.corrupted > 0);
  check "some faults masked" true (r.Inject.masked > 0);
  check "classes partition the faults" true
    (r.Inject.detected + r.Inject.corrupted + r.Inject.masked = r.Inject.faults)

let test_fault_before_term_is_detected () =
  (* the acceptance property: a bit-flipping Pauli (X or Y) landing on a
     wire whose next touching gate is an assertive quantum termination
     MUST be classified Detected — no silent assertion bypass *)
  let b = adder_circuit () in
  let flat = Circuit.inline b in
  let inputs = adder_inputs 5 4 in
  let touches w (g : Gate.t) =
    (not (Gate.is_comment g))
    && List.exists (fun (e : Wire.endpoint) -> e.Wire.wire = w) (Gate.wires g)
  in
  let next_touching (s : Faultsite.site) =
    let rec go j =
      if j >= Array.length flat.Circuit.gates then None
      else if touches s.Faultsite.wire flat.Circuit.gates.(j) then
        Some flat.Circuit.gates.(j)
      else go (j + 1)
    in
    go (s.Faultsite.index + 1)
  in
  let checked = ref 0 in
  List.iter
    (fun (s : Faultsite.site) ->
      match next_touching s with
      | Some (Gate.Term { ty = Wire.Q; _ }) ->
          List.iter
            (fun p ->
              incr checked;
              let o = Inject.run_site ~seed:1 b inputs s p in
              if o <> Inject.Detected then
                Alcotest.failf "fault %s at %s escaped the assertion (%s)"
                  (Inject.pauli_name p)
                  (Fmt.str "%a" Faultsite.pp_site s)
                  (Inject.outcome_name o))
            [ Inject.X; Inject.Y ]
      | _ -> ())
    (Faultsite.enumerate b);
  check "at least one pre-termination site exists" true (!checked > 0)

let test_masked_z_on_basis_state () =
  (* a Z fault on a classical-basis circuit is pure phase: masked *)
  let b = adder_circuit () in
  let sites = Faultsite.enumerate b in
  let s = List.hd sites in
  check "input-site Z fault is masked" true
    (Inject.run_site ~seed:1 b (adder_inputs 1 2) s Inject.Z = Inject.Masked)

let test_errored_trials_survive () =
  (* a backend raising mid-trial (clifford meets a T gate) is recorded
     as Errored per trial, not a crashed campaign *)
  let b, _ =
    Circ.generate ~in_:(Qdata.list_of 1 Qdata.qubit) (fun ql ->
        let* _ = Circ.gate_T (List.hd ql) in
        return ql)
  in
  let s =
    Noise.run_trials_on
      (module Quipper_sim.Backend.Clifford)
      ~master_seed:9 ~trials:5 ~max_failures:1 Noise.none b [ false ]
      ~expected:[ false ]
  in
  check "every trial errored" true (s.Noise.errored = 5);
  check "partition still holds" true
    (s.Noise.successes + s.Noise.wrong + s.Noise.gave_up + s.Noise.errored
    = s.Noise.trials)

let prop_domains_invariant =
  (* satellite: QUIPPER_DOMAINS must not change per-trial outcomes *)
  QCheck.Test.make ~count:10 ~name:"trial outcomes independent of domain count"
    QCheck.(pair (int_range 0 7) (int_range 0 7))
    (fun (x, y) ->
      let b = adder_circuit () in
      let saved = !Quipper_sim.Kernel.num_domains in
      let run d =
        Quipper_sim.Kernel.num_domains := d;
        Fun.protect
          ~finally:(fun () -> Quipper_sim.Kernel.num_domains := saved)
          (fun () ->
            Noise.run_trials ~master_seed:(x + (8 * y)) ~trials:12 ~max_failures:1
              (Noise.depolarizing 0.03) b (adder_inputs x y)
              ~expected:(adder_inputs x ((x + y) mod 8)))
      in
      run 1 = run 2)

let suite =
  [
    Alcotest.test_case "noise: certain bit flip" `Quick test_bit_flip_certain;
    Alcotest.test_case "noise: trips termination assertion" `Quick
      test_noise_trips_assertion;
    Alcotest.test_case "noise: readout error" `Quick test_readout_error_certain;
    Alcotest.test_case "trials: clean all succeed" `Quick test_trials_clean_all_succeed;
    Alcotest.test_case "trials: deterministic per master seed" `Quick
      test_trials_deterministic;
    Alcotest.test_case "inject: sites enumerated" `Quick test_fault_sites_enumerated;
    Alcotest.test_case "inject: sites recurse into boxes" `Quick
      test_fault_sites_recurse_into_boxes;
    Alcotest.test_case "inject: adder shows all three classes" `Quick
      test_fault_report_all_classes;
    Alcotest.test_case "inject: flips before Term always detected" `Quick
      test_fault_before_term_is_detected;
    Alcotest.test_case "inject: Z on basis state masked" `Quick
      test_masked_z_on_basis_state;
    Alcotest.test_case "trials: errors recorded, campaign survives" `Quick
      test_errored_trials_survive;
  ]

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_noiseless_is_bit_identical;
      QCheck_alcotest.to_alcotest prop_domains_invariant;
    ]
