(* Tests for the optimizer subsystem: the per-wire adjacency DAG, each
   peephole rewrite on hand-built circuits, the pass manager, and
   property-based translation validation — every optimized random circuit
   must validate, mean the same thing (statevector up to global phase, or
   bit-for-bit classically), never get deeper, and still round-trip
   through the printer and parser. *)

open Quipper
module Gen = Quipper_testgen.Gen
open Circ
module Dag = Quipper_opt.Dag
module Rewrite = Quipper_opt.Rewrite
module Passes = Quipper_opt.Passes
module Equiv = Quipper_opt.Equiv

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let gen_shape n f = fst (Circ.generate ~in_:(Qdata.list_of n Qdata.qubit) f)
let optimize b = fst (Passes.optimize b)
let find_kind b k = Gatecount.find_kind (Gatecount.aggregate b) k

(* ------------------------------------------------------------------ *)
(* The DAG                                                             *)

let test_dag_adjacency () =
  let b =
    gen_shape 2 (function
      | [ a; b ] ->
          let* a = hadamard a in
          let* () = cnot ~control:a ~target:b in
          let* _ = gate_T b in
          return [ a; b ]
      | _ -> assert false)
  in
  let c = b.Circuit.main in
  let wa = (List.nth c.Circuit.inputs 0).Wire.wire in
  let wb = (List.nth c.Circuit.inputs 1).Wire.wire in
  let d = Dag.of_circuit c in
  checki "three nodes" 3 (Dag.size d);
  check "H -> CNOT on the control wire" true (Dag.next_on_wire d 0 wa = Some 1);
  check "CNOT -> T on the target wire" true (Dag.next_on_wire d 1 wb = Some 2);
  check "H does not touch the target wire" true (Dag.next_on_wire d 0 wb = None);
  check "T's predecessor on its wire" true (Dag.prev_on_wire d 2 wb = Some 1);
  Dag.remove d 1;
  check "removal relinks both wire lists" true
    (Dag.next_on_wire d 0 wa = None && Dag.prev_on_wire d 2 wb = None);
  checki "two gates left" 2 (Array.length (Dag.to_circuit d).Circuit.gates);
  check "change tracked" true (Dag.changed d)

let test_dag_comments_transparent () =
  let b =
    gen_shape 1 (function
      | [ q ] ->
          let* q = hadamard q in
          let* () = comment "between" in
          let* q = hadamard q in
          return [ q ]
      | _ -> assert false)
  in
  let c = b.Circuit.main in
  let w = (List.hd c.Circuit.inputs).Wire.wire in
  let d = Dag.of_circuit c in
  check "comment invisible to the wire list" true (Dag.next_on_wire d 0 w = Some 2);
  check "comment has no gate" true (Dag.gate d 1 = None);
  (* the H pair cancels across the comment, which itself survives *)
  let c' = Rewrite.cancel c in
  checki "only the comment remains" 1 (Array.length c'.Circuit.gates);
  check "and it is the comment" true (Gate.is_comment c'.Circuit.gates.(0))

(* ------------------------------------------------------------------ *)
(* Rewrites on hand-built circuits                                     *)

let test_cancel_across_commuting () =
  (* T and T* sandwich a CNOT controlled on the same wire: the control is
     diagonal, so the pair cancels across it *)
  let b =
    gen_shape 2 (function
      | [ a; b ] ->
          let* a = gate_T a in
          let* () = cnot ~control:a ~target:b in
          let* () = gate_T_inv a in
          return [ a; b ]
      | _ -> assert false)
  in
  let b' = Transform.map_circuits Rewrite.cancel b in
  Circuit.validate_b b';
  checki "T pair cancelled" 0 (find_kind b' "T");
  checki "CNOT stays" 1 (find_kind b' "Not")

let test_cancel_blocked_by_noncommuting () =
  (* same sandwich but the CNOT *targets* the wire: T does not commute
     with X, nothing may cancel *)
  let b =
    gen_shape 2 (function
      | [ a; b ] ->
          let* a = gate_T a in
          let* () = cnot ~control:b ~target:a in
          let* () = gate_T_inv a in
          return [ a; b ]
      | _ -> assert false)
  in
  let b' = Transform.map_circuits Rewrite.cancel b in
  checki "T pair must stay" 2 (find_kind b' "T")

let test_dead_init_elimination () =
  (* an ancilla initialised and terminated without use dies, even with
     unrelated gates in between in the global order *)
  let b =
    gen_shape 1 (function
      | [ q ] ->
          let* x = qinit_bit false in
          let* q = hadamard q in
          let* () = qterm_bit false x in
          return [ q ]
      | _ -> assert false)
  in
  let b' = Transform.map_circuits Rewrite.cancel b in
  Circuit.validate_b b';
  checki "Init0 gone" 0 (find_kind b' "Init0");
  checki "Term0 gone" 0 (find_kind b' "Term0");
  checki "H stays" 1 (find_kind b' "H")

let test_fusion () =
  let b =
    gen_shape 1 (function
      | [ q ] ->
          let* q = gate_T q in
          let* q = gate_T q in
          let* () = rot_expZt 0.125 q in
          let* () = rot_expZt 0.25 q in
          return [ q ]
      | _ -> assert false)
  in
  let b' = Transform.map_circuits Rewrite.fuse b in
  Circuit.validate_b b';
  checki "T.T fused away" 0 (find_kind b' "T");
  checki "...into one S" 1 (find_kind b' "S");
  checki "rotations fused into one" 1 (find_kind b' "exp(-i%Z)")

let test_fusion_to_identity () =
  let b =
    gen_shape 1 (function
      | [ q ] ->
          let* () = rot_expZt 0.25 q in
          let* () = rot_expZt (-0.25) q in
          return [ q ]
      | _ -> assert false)
  in
  let b' = Transform.map_circuits Rewrite.fuse b in
  Circuit.validate_b b';
  checki "zero-angle fusion removes both" 0
    (Array.length b'.Circuit.main.Circuit.gates)

let test_flip_controls () =
  (* X . CNOT(control) . X = CNOT with negated control *)
  let b =
    gen_shape 2 (function
      | [ a; b ] ->
          let* () = qnot_ b in
          let* () = cnot ~control:b ~target:a in
          let* () = qnot_ b in
          return [ a; b ]
      | _ -> assert false)
  in
  let b' = Transform.map_circuits Rewrite.flip_controls b in
  Circuit.validate_b b';
  checki "one gate left" 1 (Array.length b'.Circuit.main.Circuit.gates);
  checki "with a negative control" 1
    (Gatecount.get (Gatecount.aggregate b')
       { Gatecount.kind = "Not"; inverted = false; pos_controls = 0; neg_controls = 1 })

let test_propagate_constants () =
  let b =
    gen_shape 2 (function
      | [ a; b ] ->
          let* x = qinit_bit true in
          (* control known true: dropped *)
          let* () = qnot_ a |> controlled [ ctl x ] in
          (* negative control on a known-true wire: gate deleted *)
          let* () = qnot_ b |> controlled [ ctl_neg x ] in
          let* () = qterm_bit true x in
          return [ a; b ]
      | _ -> assert false)
  in
  let b' = Transform.map_circuits Rewrite.propagate_constants b in
  Circuit.validate_b b';
  checki "one NOT left" 1 (find_kind b' "Not");
  checki "and it is uncontrolled" 1
    (Gatecount.get (Gatecount.aggregate b')
       { Gatecount.kind = "Not"; inverted = false; pos_controls = 0; neg_controls = 0 })

let test_constant_swap_deleted () =
  let b =
    gen_shape 1 (function
      | [ q ] ->
          let* x = qinit_bit false in
          let* y = qinit_bit false in
          let* () = swap x y in
          let* () = qterm_bit false x in
          let* () = qterm_bit false y in
          return [ q ]
      | _ -> assert false)
  in
  let b' = Transform.map_circuits Rewrite.propagate_constants b in
  Circuit.validate_b b';
  checki "swap of equal constants deleted" 0 (find_kind b' "Swap")

(* ------------------------------------------------------------------ *)
(* The pass manager                                                    *)

let test_pass_manager () =
  checki "four builtin passes" 4 (List.length Passes.builtin);
  check "pipeline lookup by name" true
    (List.map
       (fun (p : Passes.pass) -> p.Passes.pname)
       (Passes.pipeline_of_names [ "fuse"; "cancel" ])
    = [ "fuse"; "cancel" ]);
  check "unknown pass rejected" true
    (match Passes.find_pass "inline-everything" with
    | exception Errors.Error (Errors.Invalid _) -> true
    | _ -> false)

let test_optimize_reports_stats () =
  let b =
    gen_shape 1 (function
      | [ q ] ->
          let* q = hadamard q in
          let* q = hadamard q in
          return [ q ]
      | _ -> assert false)
  in
  let b', stats = Passes.optimize b in
  checki "everything cancelled" 0 (Array.length b'.Circuit.main.Circuit.gates);
  check "stats cover every pass of round one" true
    (List.length stats >= List.length Passes.default_pipeline);
  let cancel_stat =
    List.find
      (fun (s : Passes.stat) -> s.Passes.spass = "cancel" && s.Passes.round = 1)
      stats
  in
  checki "cancel removed the H pair" 2
    (cancel_stat.Passes.gates_before - cancel_stat.Passes.gates_after)

(* ------------------------------------------------------------------ *)
(* Translation validation on random circuits                           *)

let prop_optimize_statevector =
  QCheck2.Test.make
    ~name:"optimized random circuits are equivalent (statevector, up to phase)"
    ~count:200 (Gen.program_gen ~n:4 ()) (fun ops ->
      let b = Gen.circuit_of_program ~n:4 ops in
      let b' = optimize b in
      Circuit.validate_b b';
      Equiv.equivalent (Equiv.check b b'))

let prop_optimize_classical =
  QCheck2.Test.make
    ~name:"optimized reversible circuits are equivalent (classical, bit-for-bit)"
    ~count:100
    (Gen.classical_program_gen ~n:5 ())
    (fun ops ->
      let b = Gen.circuit_of_program ~n:5 ops in
      let b' = optimize b in
      Circuit.validate_b b';
      match Equiv.check b b' with
      | Equiv.Equivalent { mode = Equiv.Classical; _ } -> true
      | _ -> false)

let prop_optimize_never_deepens =
  QCheck2.Test.make ~name:"the default pipeline never increases depth" ~count:50
    (Gen.program_gen ~n:4 ()) (fun ops ->
      let b = Gen.circuit_of_program ~n:4 ops in
      let b', stats = Passes.optimize b in
      Depth.depth b' <= Depth.depth b
      && List.for_all
           (fun (s : Passes.stat) -> s.Passes.depth_after <= s.Passes.depth_before)
           stats)

let prop_optimized_roundtrip =
  QCheck2.Test.make ~name:"optimized circuits round-trip through print/parse"
    ~count:100 (Gen.program_gen ~n:4 ()) (fun ops ->
      let b' = optimize (Gen.circuit_of_program ~n:4 ops) in
      let s = Printer.to_string b' in
      let b'' = Parser.parse s in
      Circuit.validate_b b'';
      s = Printer.to_string b'')

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "dag adjacency and removal" `Quick test_dag_adjacency;
    Alcotest.test_case "dag comments transparent" `Quick test_dag_comments_transparent;
    Alcotest.test_case "cancel across commuting" `Quick test_cancel_across_commuting;
    Alcotest.test_case "cancel blocked when not commuting" `Quick
      test_cancel_blocked_by_noncommuting;
    Alcotest.test_case "dead init elimination" `Quick test_dead_init_elimination;
    Alcotest.test_case "rotation fusion" `Quick test_fusion;
    Alcotest.test_case "fusion to identity" `Quick test_fusion_to_identity;
    Alcotest.test_case "NOT-conjugation flips controls" `Quick test_flip_controls;
    Alcotest.test_case "constant propagation" `Quick test_propagate_constants;
    Alcotest.test_case "constant swap deletion" `Quick test_constant_swap_deleted;
    Alcotest.test_case "pass manager" `Quick test_pass_manager;
    Alcotest.test_case "per-pass statistics" `Quick test_optimize_reports_stats;
    QCheck_alcotest.to_alcotest prop_optimize_statevector;
    QCheck_alcotest.to_alcotest prop_optimize_classical;
    QCheck_alcotest.to_alcotest prop_optimize_never_deepens;
    QCheck_alcotest.to_alcotest prop_optimized_roundtrip;
  ]
