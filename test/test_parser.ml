(* Round-trip tests for circuit (de)serialisation: Printer -> Parser. *)

open Quipper
module Gen = Quipper_testgen.Gen
open Circ

let check = Alcotest.(check bool)
let checks = Alcotest.(check string)

let roundtrip b =
  let s = Printer.to_string b in
  let b' = Parser.parse s in
  (s, b')

let test_simple_roundtrip () =
  let b, _ =
    Circ.generate ~in_:(Qdata.pair Qdata.qubit Qdata.qubit) (fun (a, b) ->
        let* a = hadamard a in
        let* () = cnot ~control:a ~target:b in
        let* () = rot_expZt 0.375 b in
        let* () = qnot_ a |> controlled [ ctl_neg b ] in
        let* m = measure_qubit b in
        let* () = qnot_ a |> controlled [ ctl_bit m ] in
        return (a, m))
  in
  let s, b' = roundtrip b in
  checks "print-parse-print idempotent" s (Printer.to_string b');
  Circuit.validate_b b'

let test_gate_variety_roundtrip () =
  let b, _ =
    Circ.generate ~in_:(Qdata.triple Qdata.qubit Qdata.qubit Qdata.qubit)
      (fun (a, b, c) ->
        let* () = gate_W a b in
        let* () = gate_W_inv b c in
        let* () = swap a c in
        let* _ = gate_T a in
        let* () = gate_T_inv a in
        let* () = gate_R 3 b in
        let* () = global_phase 0.25 in
        let* x = qinit_bit true in
        let* () = comment_with_label "checkpoint" Qdata.qubit x "anc" in
        let* () = qterm_bit true x in
        let* () = qdiscard c in
        return (a, b))
  in
  let s, b' = roundtrip b in
  checks "idempotent over all gate kinds" s (Printer.to_string b')

let test_subroutine_roundtrip () =
  let p = { Algo_tf.Oracle.l = 3; n = 2; r = 1 } in
  let b = Algo_tf.Qwtfp.generate_pow17 ~p () in
  let s, b' = roundtrip b in
  checks "boxed circuit with comments roundtrips" s (Printer.to_string b');
  Circuit.validate_b b';
  (* semantics preserved: same classical behaviour *)
  let flat = Circuit.inline b and flat' = Circuit.inline b' in
  check "same inlined gate count" true
    (Array.length flat.Circuit.gates = Array.length flat'.Circuit.gates);
  check "same aggregated counts" true
    (Gatecount.Counts.equal ( = ) (Gatecount.aggregate b) (Gatecount.aggregate b'))

let test_cgate_roundtrip () =
  let b, _ =
    Circ.generate ~in_:Qdata.qubit (fun q ->
        let* m = measure_qubit q in
        let* n = cgate_not m in
        let* x = cgate_xor [ m; n ] in
        return x)
  in
  let s, b' = roundtrip b in
  checks "classical gates roundtrip" s (Printer.to_string b')

let test_parse_file () =
  let b, _ =
    Circ.generate ~in_:Qdata.qubit (fun q ->
        let* q = hadamard q in
        return q)
  in
  let path = Filename.temp_file "quipper" ".qc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Printer.to_string b);
      close_out oc;
      let b' = Parser.parse_file path in
      checks "file roundtrip" (Printer.to_string b) (Printer.to_string b'))

let test_parse_errors () =
  let expect_fail s =
    match Parser.parse s with
    | exception Errors.Error (Errors.Invalid _) -> ()
    | _ -> Alcotest.failf "expected a parse error on %S" s
  in
  expect_fail "garbage";
  expect_fail "Inputs: 0:Qubit\nQGate[oops](0)\nOutputs: 0:Qubit";
  expect_fail "Inputs: 0:Qubit\nQGate[\"H\"](0)"

let prop_roundtrip_random =
  QCheck2.Test.make ~name:"print-parse-print idempotent on random circuits"
    ~count:80 (Gen.program_gen ~n:4 ())
    (fun ops ->
      let b = Gen.circuit_of_program ~n:4 ops in
      let s = Printer.to_string b in
      let b' = Parser.parse s in
      s = Printer.to_string b')

let suite =
  [
    Alcotest.test_case "simple roundtrip" `Quick test_simple_roundtrip;
    Alcotest.test_case "all gate kinds" `Quick test_gate_variety_roundtrip;
    Alcotest.test_case "boxed circuits" `Quick test_subroutine_roundtrip;
    Alcotest.test_case "classical gates" `Quick test_cgate_roundtrip;
    Alcotest.test_case "file roundtrip" `Quick test_parse_file;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    QCheck_alcotest.to_alcotest prop_roundtrip_random;
  ]
