(* The shot service ([Quipper_serve]) and the sampling surface it rides
   on ([Backend.S.snapshot]/[sample_from]).

   The load-bearing property is the sampling law: N shots drawn from one
   frozen pre-measurement state must be bit-identical, at equal seeds,
   to N independent end-to-end runs — on the statevector/fused and
   clifford backends, whatever the domain count. Everything else (the
   request cache, the shared box cache, the re-simulation fallback, the
   noiseless campaign fast path) must preserve exactly that equality. *)

open Quipper
open Circ
module Gen = Quipper_testgen.Gen
module Backend = Quipper_sim.Backend
module Sv = Quipper_sim.Statevector
module Fuse = Quipper_sim.Fuse
module Kernel = Quipper_sim.Kernel
module Noise = Quipper_sim.Noise
module Serve = Quipper_serve

let check = Alcotest.(check bool)
let inputs_gen n = QCheck2.Gen.(list_repeat n bool)

(* ------------------------------------------------------------------ *)
(* The sampling law, end to end through the service                    *)

(* Submit the same request twice as a batch (so the second is served
   from the request cache) at [domains] workers and compare every shot
   against the naive per-shot rebuild+resimulate path. *)
let serve_matches_naive ~choice ~domains req =
  let saved = !Kernel.num_domains in
  Kernel.num_domains := domains;
  let svc = Serve.create ~backend:choice () in
  let naive = Serve.naive svc req in
  let replies = Serve.submit_batch svc [ req; req ] in
  Kernel.num_domains := saved;
  match replies with
  | [ Ok r1; Ok r2 ] ->
      r1.Serve.outcomes = naive && r2.Serve.outcomes = naive
      (* at one worker the requests are served in order, so the second
         must hit the cache; racing workers may legitimately both miss *)
      && (domains > 1 || r2.Serve.cache_hit)
  | _ -> false

let prop_sampling_law ~name ~choice ~gen ~n =
  QCheck2.Test.make ~name ~count:60
    QCheck2.Gen.(pair (gen ()) (inputs_gen n))
    (fun (ops, inputs) ->
      let b = Gen.circuit_of_program ~n ops in
      let req = { Serve.circuit = b; inputs; shots = 5; seed = 42 } in
      serve_matches_naive ~choice ~domains:1 req
      && serve_matches_naive ~choice ~domains:2 req)

let prop_law_statevector =
  prop_sampling_law
    ~name:"sampling law: statevector, batched = naive, 1 and 2 domains (60)"
    ~choice:`Statevector
    ~gen:(fun () -> Gen.program_gen ~n:4 ())
    ~n:4

let prop_law_fused =
  prop_sampling_law
    ~name:"sampling law: fused, batched = naive, 1 and 2 domains (60)"
    ~choice:`Fused
    ~gen:(fun () -> Gen.program_gen ~n:4 ())
    ~n:4

let prop_law_clifford =
  prop_sampling_law
    ~name:"sampling law: clifford, batched = naive, 1 and 2 domains (60)"
    ~choice:`Clifford
    ~gen:(fun () -> Gen.clifford_program_gen ~n:4 ())
    ~n:4

let prop_law_auto =
  prop_sampling_law
    ~name:"sampling law: auto backend pick, batched = naive (60)"
    ~choice:`Auto
    ~gen:(fun () -> Gen.program_gen ~n:4 ())
    ~n:4

(* ------------------------------------------------------------------ *)
(* Fallback: mid-circuit measurement forbids snapshots                 *)

(* H; CNOT; measure one qubit mid-circuit; keep going. The measurement
   consumes seeded randomness, so every backend must decline to
   snapshot and the service must re-simulate each shot — still
   bit-identical to the naive path by construction. *)
let measuring_circuit () =
  let shape = Qdata.list_of 2 Qdata.qubit in
  let b, _ =
    Circ.generate ~in_:shape (fun ql ->
        match ql with
        | [ a; b ] ->
            let* a = hadamard a in
            let* () = cnot ~control:a ~target:b in
            let* _ca = measure_qubit a in
            let* b = hadamard b in
            return [ b ]
        | _ -> assert false)
  in
  b

let test_resim_fallback () =
  let b = measuring_circuit () in
  List.iter
    (fun choice ->
      let svc = Serve.create ~backend:choice () in
      let req = { Serve.circuit = b; inputs = [ false; false ]; shots = 8; seed = 3 } in
      let r = Serve.submit svc req in
      check "all shots resimulated" true
        (r.Serve.sampled = 0 && r.Serve.resimulated = 8);
      check "fallback still bit-identical" true
        (r.Serve.outcomes = Serve.naive svc req))
    [ `Clifford; `Fused; `Statevector; `Auto ]

(* The law-checked default derivation for backends that cannot snapshot
   at all: [Without_snapshot] declines every state, and otherwise
   behaves exactly like its base. *)
module WS = Backend.Without_snapshot (Backend.Statevector)

let test_without_snapshot () =
  let ops = Gen.sample (Gen.program_gen ~n:3 ()) in
  let b = Gen.circuit_of_program ~n:3 ops in
  let inputs = [ true; false; false ] in
  let st = WS.run_circuit ~seed:9 b inputs in
  check "declines every state" true (WS.snapshot st = None);
  check "base behaviour unchanged" true
    (Backend.run_and_measure (module WS) ~seed:9 b inputs
    = Backend.run_and_measure (module Backend.Statevector) ~seed:9 b inputs)

(* ------------------------------------------------------------------ *)
(* The canonical structural hash                                       *)

let test_hash_structural () =
  let ops = [ Gen.H 0; Gen.CNot (0, 1); Gen.T 1 ] in
  let b1 = Gen.circuit_of_program ~n:2 ops in
  let b2 = Gen.circuit_of_program ~n:2 ops in
  check "structurally equal rebuilds hash equal" true
    (Circuit.hash b1 = Circuit.hash b2);
  let b3 = Gen.circuit_of_program ~n:2 [ Gen.H 0; Gen.CNot (0, 1); Gen.S 1 ] in
  check "different gates hash differently" true (Circuit.hash b1 <> Circuit.hash b3)

let flat_rot angle : Circuit.t =
  {
    Circuit.inputs = [ { Wire.wire = 0; ty = Wire.Q } ];
    gates =
      [|
        Gate.Rot { name = "Rz"; angle; inv = false; targets = [ 0 ]; controls = [] };
      |];
    outputs = [ { Wire.wire = 0; ty = Wire.Q } ];
  }

let test_hash_parameter_sensitive () =
  check "equal angles hash equal" true
    (Circuit.hash_t (flat_rot 0.25) = Circuit.hash_t (flat_rot 0.25));
  check "angles enter via IEEE bits" true
    (Circuit.hash_t (flat_rot (0.1 +. 0.2)) <> Circuit.hash_t (flat_rot 0.3))

(* ------------------------------------------------------------------ *)
(* Box-alias regression: the compiled-program cache keys on body hash  *)

let boxed_circuit ops : Circuit.b =
  let shape = Qdata.list_of 2 Qdata.qubit in
  let b, _ =
    Circ.generate ~in_:shape (fun ql ->
        box "body" ~in_:shape ~out:shape (Gen.program_fun ops) ql)
  in
  b

let test_box_alias () =
  (* same box name, different bodies, one shared compiled-program
     cache: before keying on the structural body hash, the second
     circuit would replay the first circuit's compilation *)
  let b1 = boxed_circuit [ Gen.H 0; Gen.CNot (0, 1) ] in
  let b2 = boxed_circuit [ Gen.X 0; Gen.T 1 ] in
  check "bodies hash differently" true (Circuit.hash b1 <> Circuit.hash b2);
  let boxes = Fuse.box_cache () in
  let amps ?boxes b =
    Fuse.amplitudes (Fuse.run_circuit ?boxes ~seed:3 b [ true; false ])
  in
  let fresh1 = amps b1 and fresh2 = amps b2 in
  check "shared cache: first circuit unchanged" true (amps ~boxes b1 = fresh1);
  check "shared cache: same-named box does not alias" true
    (amps ~boxes b2 = fresh2)

(* ------------------------------------------------------------------ *)
(* The noiseless campaign fast path rides the same surface             *)

let test_noise_snapshot_path () =
  let b =
    Gen.circuit_of_program ~n:3 [ Gen.H 0; Gen.CNot (0, 1); Gen.Toffoli (0, true, 1, true, 2) ]
  in
  let inputs = [ false; true; false ] in
  let collect engine =
    let out = Array.make 20 None in
    let s =
      Noise.sample_trials_on
        (module Backend.Statevector)
        ~master_seed:5 ~engine ~trials:20 Noise.none b inputs
        ~f:(fun t x -> out.(t) <- Some x)
    in
    (out, s)
  in
  let auto, sa = collect `Auto in
  let slow, ss = collect `Slow in
  check "noiseless auto = slow, bit for bit" true (auto = slow);
  check "auto served every trial from one snapshot" true
    (sa.Noise.snapshot_sampled = 20 && sa.Noise.completed = 20);
  check "slow path untouched" true
    (ss.Noise.snapshot_sampled = 0 && ss.Noise.slow_sampled = 20)

(* Single-prepare under contention: many workers race for one key; the
   first marks it in-flight and prepares, the rest block on the condvar
   and take the cached entry. Exactly one preparation run must happen,
   and the blocked workers must count as hits — the outcomes staying
   bit-identical to the naive path throughout. *)
let test_single_prepare () =
  let saved = !Kernel.num_domains in
  Kernel.num_domains := 8;
  let b =
    Gen.circuit_of_program ~n:3 [ Gen.H 0; Gen.CNot (0, 1); Gen.CNot (1, 2) ]
  in
  let req =
    { Serve.circuit = b; inputs = [ false; false; false ]; shots = 4; seed = 9 }
  in
  let svc = Serve.create ~backend:`Statevector () in
  let naive = Serve.naive svc req in
  let replies = Serve.submit_batch svc (List.init 16 (fun _ -> req)) in
  Kernel.num_domains := saved;
  let st = Serve.stats svc in
  check "all 16 replies match naive" true
    (List.for_all
       (function Ok r -> r.Serve.outcomes = naive | Error _ -> false)
       replies);
  check "prepared exactly once" true (st.Serve.prepares = 1);
  check "one miss, the rest hits" true
    (st.Serve.misses = 1 && st.Serve.hits = 15 && st.Serve.entries = 1)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_law_statevector;
    QCheck_alcotest.to_alcotest prop_law_fused;
    QCheck_alcotest.to_alcotest prop_law_clifford;
    QCheck_alcotest.to_alcotest prop_law_auto;
    Alcotest.test_case "fallback: mid-circuit measurement resimulates" `Quick
      test_resim_fallback;
    Alcotest.test_case "Without_snapshot: declines, base unchanged" `Quick
      test_without_snapshot;
    Alcotest.test_case "hash: structural equality and sensitivity" `Quick
      test_hash_structural;
    Alcotest.test_case "hash: rotation angles via IEEE bits" `Quick
      test_hash_parameter_sensitive;
    Alcotest.test_case "box cache: same name, different bodies" `Quick
      test_box_alias;
    Alcotest.test_case "noise: noiseless sampling rides the snapshot" `Quick
      test_noise_snapshot_path;
    Alcotest.test_case "cache: one prepare under 8-domain contention" `Quick
      test_single_prepare;
  ]
