(* Tests for the three simulators (paper 4.4.5's run functions) and their
   agreement with each other, plus dynamic lifting (the QRAM model). *)

open Quipper
open Circ
module Sv = Quipper_sim.Statevector
module Cl = Quipper_sim.Clifford
module Cs = Quipper_sim.Classical

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Statevector basics                                                  *)

let test_sv_hadamard_probability () =
  let st, q =
    Sv.run_fun ~seed:1 ~in_:Qdata.qubit false (fun q -> hadamard q)
  in
  checkf "P(1) = 1/2" 0.5 (Sv.prob_one st (Wire.qubit_wire q))

let test_sv_interference () =
  (* HH = I: deterministic zero *)
  let st, q =
    Sv.run_fun ~seed:1 ~in_:Qdata.qubit false (fun q -> hadamard q >>= hadamard)
  in
  checkf "P(1) = 0" 0.0 (Sv.prob_one st (Wire.qubit_wire q))

let test_sv_bell_correlation () =
  for seed = 1 to 30 do
    let st, (a, b) =
      Sv.run_fun ~seed ~in_:(Qdata.pair Qdata.qubit Qdata.qubit) (false, false)
        (fun (a, b) ->
          let* a = hadamard a in
          let* () = cnot ~control:a ~target:b in
          return (a, b))
    in
    let va, vb = Sv.measure_and_read st (Qdata.pair Qdata.qubit Qdata.qubit) (a, b) in
    check "correlated" true (va = vb)
  done

let test_sv_measurement_statistics () =
  (* measuring |+> ~1000 times: between 400 and 600 ones *)
  let ones = ref 0 in
  for seed = 1 to 1000 do
    let st, q = Sv.run_fun ~seed ~in_:Qdata.qubit false (fun q -> hadamard q) in
    if Sv.measure st (Wire.qubit_wire q) then incr ones
  done;
  check "unbiased" true (!ones > 400 && !ones < 600)

let test_sv_term_assertion_pass () =
  let _st, () =
    Sv.run_fun ~seed:1 ~in_:Qdata.qubit true (fun q ->
        with_ancilla (fun a ->
            let* () = cnot ~control:q ~target:a in
            let* () = cnot ~control:q ~target:a in
            return ()))
  in
  check "scoped ancilla ok" true true

let test_sv_term_assertion_fail () =
  match
    Sv.run_fun ~seed:1 ~in_:Qdata.qubit true (fun q ->
        with_ancilla (fun a -> cnot ~control:q ~target:a))
  with
  | exception Errors.Error (Errors.Termination_assertion _) -> ()
  | _ -> Alcotest.fail "expected termination assertion failure"

let test_sv_term_superposition_fail () =
  match
    Sv.run_fun ~seed:1 ~in_:Qdata.qubit false (fun q ->
        let* q = hadamard q in
        qterm_bit false q)
  with
  | exception Errors.Error (Errors.Termination_assertion _) -> ()
  | _ -> Alcotest.fail "expected termination assertion failure"

let test_sv_global_phase_invisible () =
  let st, q =
    Sv.run_fun ~seed:1 ~in_:Qdata.qubit false (fun q ->
        let* q = hadamard q in
        let* () = global_phase 1.234 in
        hadamard q)
  in
  checkf "still deterministic" 0.0 (Sv.prob_one st (Wire.qubit_wire q))

let test_sv_controlled_phase_visible () =
  (* H; controlled-phase pi (= Z); H maps |0> to |1> *)
  let st, q =
    Sv.run_fun ~seed:1 ~in_:Qdata.qubit false (fun q ->
        let* q = hadamard q in
        let* () = (fun c -> Circ.emit c (Gate.Phase { angle = Float.pi; controls = [ Circ.ctl q ] })) in
        hadamard q)
  in
  checkf "P(1) = 1" 1.0 (Sv.prob_one st (Wire.qubit_wire q))

let test_sv_w_gate () =
  (* W on |01> gives (|01>+|10>)/sqrt2: both qubits 50/50 but correlated
     to odd parity *)
  let st, (a, b) =
    Sv.run_fun ~seed:5 ~in_:(Qdata.pair Qdata.qubit Qdata.qubit) (false, true)
      (fun (a, b) ->
        let* () = gate_W a b in
        return (a, b))
  in
  let va, vb = Sv.measure_and_read st (Qdata.pair Qdata.qubit Qdata.qubit) (a, b) in
  check "odd parity preserved" true (va <> vb)

let test_sv_rotation_angles () =
  (* Rx(pi) = -iX: flips deterministically *)
  let st, q =
    Sv.run_fun ~seed:1 ~in_:Qdata.qubit false (fun q ->
        let* () = rot_X Float.pi q in
        return q)
  in
  checkf "Rx(pi) flips" 1.0 (Sv.prob_one st (Wire.qubit_wire q))

let test_sv_capacity_guard () =
  (* one qubit past [max_qubits] must raise Simulation, not allocate *)
  let n = Sv.max_qubits + 1 in
  let b, _ = Circ.generate ~in_:(Qdata.list_of n Qdata.qubit) (fun ql -> return ql) in
  match Sv.run_circuit ~seed:1 b (List.init n (fun _ -> false)) with
  | exception Errors.Error (Errors.Simulation msg) ->
      check "message names the limit" true
        (Astring_contains.contains msg (string_of_int Sv.max_qubits))
  | _ -> Alcotest.fail "expected the capacity guard to fire"

let test_sv_inverse_gates () =
  (* T then T* is identity; S* S also *)
  let st, q =
    Sv.run_fun ~seed:1 ~in_:Qdata.qubit false (fun q ->
        let* q = hadamard q in
        let* q = gate_T q in
        let* () = gate_T_inv q in
        let* q = gate_S q in
        let* () = gate_S_inv q in
        hadamard q)
  in
  checkf "identity" 0.0 (Sv.prob_one st (Wire.qubit_wire q))

(* ------------------------------------------------------------------ *)
(* Classical simulator                                                 *)

let test_classical_rejects_hadamard () =
  match
    Cs.run_oracle ~in_:Qdata.qubit ~out:Qdata.qubit false (fun q -> hadamard q)
  with
  | exception Errors.Error (Errors.Simulation _) -> ()
  | _ -> Alcotest.fail "expected simulation error"

let test_classical_toffoli_table () =
  let shape = Qdata.triple Qdata.qubit Qdata.qubit Qdata.qubit in
  for v = 0 to 7 do
    let a = v land 1 = 1 and b = v land 2 = 2 and c = v land 4 = 4 in
    let a', b', c' =
      Cs.run_oracle ~in_:shape ~out:shape (a, b, c) (fun (a, b, c) ->
          let* () = toffoli ~c1:a ~c2:b ~target:c in
          return (a, b, c))
    in
    check "toffoli truth table" true (a' = a && b' = b && c' = (c <> (a && b)))
  done

let test_classical_negative_controls () =
  let shape = Qdata.pair Qdata.qubit Qdata.qubit in
  List.iter
    (fun (a, b) ->
      let _, b' =
        Cs.run_oracle ~in_:shape ~out:shape (a, b) (fun (a, b) ->
            let* () = qnot_ b |> controlled [ ctl_neg a ] in
            return (a, b))
      in
      check "negative control" true (b' = (b <> not a)))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_classical_swap () =
  let shape = Qdata.pair Qdata.qubit Qdata.qubit in
  let a', b' =
    Cs.run_oracle ~in_:shape ~out:shape (true, false) (fun (a, b) ->
        let* () = swap a b in
        return (a, b))
  in
  check "swapped" true (a' = false && b' = true)

let test_classical_cgates () =
  let _r, ro =
    Cs.run_fun ~in_:Qdata.unit () (fun () ->
        let* a = cinit_bit true in
        let* b = cinit_bit false in
        let* x = cgate_xor [ a; b ] in
        let* y = cgate_and [ a; b ] in
        let* o = cgate_or [ a; b ] in
        let* n = cgate_not b in
        return (x, (y, (o, n))))
  in
  let r, _ = _r, () in
  let x, (y, (o, n)) =
    ro.Cs.read (Qdata.pair Qdata.bit (Qdata.pair Qdata.bit (Qdata.pair Qdata.bit Qdata.bit))) r
  in
  check "xor" true x;
  check "and" false y;
  check "or" true o;
  check "not" true n

(* ------------------------------------------------------------------ *)
(* Clifford simulator                                                  *)

let test_clifford_bell () =
  for seed = 1 to 30 do
    let st, (a, b) =
      Cl.run_fun ~seed ~in_:(Qdata.pair Qdata.qubit Qdata.qubit) (false, false)
        (fun (a, b) ->
          let* a = hadamard a in
          let* () = cnot ~control:a ~target:b in
          return (a, b))
    in
    let va, vb = Cl.measure_and_read st (Qdata.pair Qdata.qubit Qdata.qubit) (a, b) in
    check "clifford bell correlation" true (va = vb)
  done

let test_clifford_deterministic () =
  (* X|0> measures 1 deterministically; HH|0> measures 0 *)
  let st, q =
    Cl.run_fun ~seed:1 ~in_:Qdata.qubit false (fun q -> gate_X q)
  in
  let v = Cl.measure_and_read st Qdata.qubit q in
  check "X flips" true v;
  let st, q =
    Cl.run_fun ~seed:1 ~in_:Qdata.qubit false (fun q -> hadamard q >>= hadamard)
  in
  check "HH = I" false (Cl.measure_and_read st Qdata.qubit q)

let test_clifford_rejects_t () =
  match Cl.run_fun ~seed:1 ~in_:Qdata.qubit false (fun q -> gate_T q) with
  | exception Errors.Error (Errors.Simulation _) -> ()
  | _ -> Alcotest.fail "expected simulation error on T"

let test_clifford_rejection_names_gate_and_wire () =
  (* the rejection message must name the offending gate and its wire *)
  (match Cl.run_fun ~seed:1 ~in_:Qdata.qubit false (fun q -> gate_T q) with
  | exception Errors.Error (Errors.Simulation msg) ->
      check "names T and its wire" true (Astring_contains.contains msg "T on wire 0")
  | _ -> Alcotest.fail "expected rejection");
  match
    Cl.run_fun ~seed:1 ~in_:Qdata.qubit false (fun q ->
        let* () = rot_X 0.3 q in
        return q)
  with
  | exception Errors.Error (Errors.Simulation msg) ->
      check "names Rx and its wire" true (Astring_contains.contains msg "Rx on wire 0")
  | _ -> Alcotest.fail "expected rejection"

let test_clifford_ghz () =
  for seed = 1 to 20 do
    let shape = Qdata.triple Qdata.qubit Qdata.qubit Qdata.qubit in
    let st, (a, b, c) =
      Cl.run_fun ~seed ~in_:shape (false, false, false) (fun (a, b, c) ->
          let* a = hadamard a in
          let* () = cnot ~control:a ~target:b in
          let* () = cnot ~control:b ~target:c in
          return (a, b, c))
    in
    let va, vb, vc = Cl.measure_and_read st shape (a, b, c) in
    check "GHZ correlation" true (va = vb && vb = vc)
  done

let test_clifford_term_assertions () =
  (* valid scoped ancilla passes, superposed termination fails *)
  let _ =
    Cl.run_fun ~seed:1 ~in_:Qdata.qubit true (fun q ->
        with_ancilla (fun a ->
            let* () = cnot ~control:q ~target:a in
            let* () = cnot ~control:q ~target:a in
            return ()))
  in
  (match
     Cl.run_fun ~seed:1 ~in_:Qdata.qubit false (fun q ->
         let* q = hadamard q in
         qterm_bit false q)
   with
  | exception Errors.Error (Errors.Termination_assertion _) -> ()
  | _ -> Alcotest.fail "expected assertion failure");
  check "ok" true true

let test_clifford_vs_statevector_deterministic () =
  (* random Clifford programs, then their inverse: both simulators must
     deterministically measure all zeros *)
  let progs =
    [
      (fun qs ->
        let open Circ in
        let qs = Array.of_list qs in
        let* () = hadamard_ qs.(0) in
        let* () = cnot ~control:qs.(0) ~target:qs.(1) in
        let* _ = gate_S qs.(1) in
        let* () = swap qs.(0) qs.(2) in
        let* _ = gate_V qs.(2) in
        return (Array.to_list qs));
    ]
  in
  List.iter
    (fun f ->
      let w = Qdata.list_of 3 Qdata.qubit in
      let roundtrip qs =
        let* qs = f qs in
        reverse_simple w f qs
      in
      let st, qs = Sv.run_fun ~seed:3 ~in_:w [ false; false; false ] roundtrip in
      check "sv roundtrip zero" true
        (Sv.measure_and_read st w qs = [ false; false; false ]);
      let st, qs = Cl.run_fun ~seed:3 ~in_:w [ false; false; false ] roundtrip in
      check "clifford roundtrip zero" true
        (Cl.measure_and_read st w qs = [ false; false; false ]))
    progs

(* ------------------------------------------------------------------ *)
(* Dynamic lifting / QRAM                                              *)

let test_dynamic_lifting_value () =
  let _, v =
    Sv.run_fun ~seed:1 ~in_:Qdata.qubit true (fun q ->
        let* m = measure_qubit q in
        dynamic_lift m)
  in
  check "lifted true" true v

let test_dynamic_lifting_unavailable () =
  match
    Circ.generate ~in_:Qdata.qubit (fun q ->
        let* m = measure_qubit q in
        dynamic_lift m)
  with
  | exception Errors.Error Errors.Dynamic_lifting_unavailable -> ()
  | _ -> Alcotest.fail "expected dynamic-lifting error under plain generation"

let test_dynamic_lifting_steers_generation () =
  (* the generated gate sequence depends on the measured outcome *)
  let f () =
    let* q = qinit_bit false in
    let* q = hadamard q in
    let* m = measure_qubit q in
    let* v = dynamic_lift m in
    let* extra = qinit_bit false in
    let* () = if v then qnot_ extra else return () in
    let* e = measure_qubit extra in
    dynamic_lift e
  in
  (* whenever the coin gives 1, the conditional X fires and [extra] reads 1 *)
  for seed = 1 to 20 do
    let _, e = Sv.run_fun ~seed ~in_:Qdata.unit () (fun () -> f ()) in
    (* e = coin outcome: either way the circuit was consistent *)
    ignore e
  done;
  check "ok" true true

let suite =
  [
    Alcotest.test_case "sv: hadamard p=1/2" `Quick test_sv_hadamard_probability;
    Alcotest.test_case "sv: interference" `Quick test_sv_interference;
    Alcotest.test_case "sv: bell correlations" `Quick test_sv_bell_correlation;
    Alcotest.test_case "sv: measurement statistics" `Slow test_sv_measurement_statistics;
    Alcotest.test_case "sv: scoped ancilla passes" `Quick test_sv_term_assertion_pass;
    Alcotest.test_case "sv: wrong uncompute caught" `Quick test_sv_term_assertion_fail;
    Alcotest.test_case "sv: superposed term caught" `Quick test_sv_term_superposition_fail;
    Alcotest.test_case "sv: global phase invisible" `Quick test_sv_global_phase_invisible;
    Alcotest.test_case "sv: controlled phase visible" `Quick test_sv_controlled_phase_visible;
    Alcotest.test_case "sv: W gate" `Quick test_sv_w_gate;
    Alcotest.test_case "sv: rotations" `Quick test_sv_rotation_angles;
    Alcotest.test_case "sv: capacity guard" `Quick test_sv_capacity_guard;
    Alcotest.test_case "sv: inverse gates" `Quick test_sv_inverse_gates;
    Alcotest.test_case "classical: rejects H" `Quick test_classical_rejects_hadamard;
    Alcotest.test_case "classical: toffoli table" `Quick test_classical_toffoli_table;
    Alcotest.test_case "classical: negative controls" `Quick test_classical_negative_controls;
    Alcotest.test_case "classical: swap" `Quick test_classical_swap;
    Alcotest.test_case "classical: logic gates" `Quick test_classical_cgates;
    Alcotest.test_case "clifford: bell" `Quick test_clifford_bell;
    Alcotest.test_case "clifford: deterministic gates" `Quick test_clifford_deterministic;
    Alcotest.test_case "clifford: rejects T" `Quick test_clifford_rejects_t;
    Alcotest.test_case "clifford: rejection names gate and wire" `Quick
      test_clifford_rejection_names_gate_and_wire;
    Alcotest.test_case "clifford: GHZ" `Quick test_clifford_ghz;
    Alcotest.test_case "clifford: assertions" `Quick test_clifford_term_assertions;
    Alcotest.test_case "clifford vs sv roundtrips" `Quick test_clifford_vs_statevector_deterministic;
    Alcotest.test_case "dynamic lifting: value" `Quick test_dynamic_lifting_value;
    Alcotest.test_case "dynamic lifting: unavailable" `Quick test_dynamic_lifting_unavailable;
    Alcotest.test_case "dynamic lifting: steering" `Quick test_dynamic_lifting_steers_generation;
  ]

(* randomized Clifford cross-check: for random Clifford-only programs C,
   running C then its reverse must deterministically measure all-zeros in
   BOTH simulators — exercising the tableau against the dense simulator on
   a wide family of states *)
let clifford_op_gen n =
  let open QCheck2.Gen in
  let idx = int_range 0 (n - 1) in
  frequency
    [
      (3, idx >|= fun i -> `H i);
      (2, idx >|= fun i -> `S i);
      (2, idx >|= fun i -> `X i);
      (2, idx >|= fun i -> `V i);
      (3, pair idx idx >|= fun (a, b) -> `CNot (a, b));
      (1, pair idx idx >|= fun (a, b) -> `Swap (a, b));
    ]

let interp_clifford qs op =
  let open Circ in
  let n = Array.length qs in
  match op with
  | `H i -> hadamard_ qs.(i mod n)
  | `S i ->
      let* _ = gate_S qs.(i mod n) in
      return ()
  | `X i -> qnot_ qs.(i mod n)
  | `V i ->
      let* _ = gate_V qs.(i mod n) in
      return ()
  | `CNot (a, b) ->
      let a = a mod n and b = b mod n in
      if a <> b then cnot ~control:qs.(a) ~target:qs.(b) else return ()
  | `Swap (a, b) ->
      let a = a mod n and b = b mod n in
      if a <> b then swap qs.(a) qs.(b) else return ()

let prop_clifford_cross_check =
  QCheck2.Test.make ~name:"random Clifford roundtrips agree across simulators"
    ~count:60
    QCheck2.Gen.(list_size (int_range 1 25) (clifford_op_gen 4))
    (fun ops ->
      let open Circ in
      let w = Qdata.list_of 4 Qdata.qubit in
      let prog qs =
        let arr = Array.of_list qs in
        let* () = iterm (interp_clifford arr) ops in
        return (Array.to_list arr)
      in
      let roundtrip qs =
        let* qs = prog qs in
        reverse_simple w prog qs
      in
      let zeros = [ false; false; false; false ] in
      let st, qs = Sv.run_fun ~seed:11 ~in_:w zeros roundtrip in
      let sv_ok = Sv.measure_and_read st w qs = zeros in
      let st, qs = Cl.run_fun ~seed:11 ~in_:w zeros roundtrip in
      let cl_ok = Cl.measure_and_read st w qs = zeros in
      sv_ok && cl_ok)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_clifford_cross_check ]

(* ------------------------------------------------------------------ *)
(* par_range edge cases                                                *)

(* The kernel partitioner must visit every index in [0, n) exactly once
   whatever the relation of [n] to the domain count and threshold: n
   below the threshold (sequential path), exactly at it (first parallel
   n), not divisible by the domain count (main domain takes the
   remainder), and smaller than the domain count (empty worker
   chunks). Runs with [num_domains = 2] forced, restoring the globals
   afterwards. *)
let test_par_range_edges () =
  let module K = Quipper_sim.Kernel in
  let saved_d = !K.num_domains and saved_t = !K.threshold in
  Fun.protect
    ~finally:(fun () ->
      K.num_domains := saved_d;
      K.threshold := saved_t)
    (fun () ->
      K.num_domains := 2;
      K.threshold := 4;
      let covered_once n =
        let hits = Array.make (max n 1) 0 in
        K.par_range n (fun lo hi ->
            for i = lo to hi - 1 do
              hits.(i) <- hits.(i) + 1
            done);
        Array.for_all (fun c -> c = 1) (Array.sub hits 0 n)
      in
      List.iter
        (fun n ->
          Alcotest.(check bool)
            (Printf.sprintf "par_range covers [0, %d) exactly once" n)
            true (covered_once n))
        [ 1; 2; 3; 4; 5; 7; 8; 16; 31 ];
      (* n = 0: no index may be touched *)
      let touched = ref false in
      K.par_range 0 (fun lo hi -> if hi > lo then touched := true);
      Alcotest.(check bool) "par_range 0 touches nothing" false !touched;
      (* n smaller than the domain count: workers get empty chunks *)
      K.num_domains := 8;
      List.iter
        (fun n ->
          Alcotest.(check bool)
            (Printf.sprintf "par_range covers [0, %d) with 8 domains" n)
            true (covered_once n))
        [ 4; 5; 7 ])

let suite =
  suite
  @ [ Alcotest.test_case "par_range edge cases (2 domains)" `Quick
        test_par_range_edges ]
