(* Differential tests for the streaming emission path: on random
   circuits, every streaming sink must agree *exactly* with its
   materialized counterpart — gate counts structurally, printed text
   byte for byte, simulated amplitudes bit for bit. Plus regressions
   pinning the event order for boxed/controlled subcircuits and the
   retain machinery under [with_computed]. *)

open Quipper
module Gen = Quipper_testgen.Gen
open Circ
module Backend = Quipper_sim.Backend
module Sv = Quipper_sim.Statevector

let check = Alcotest.(check bool)
let n = 4
let in_ = Qdata.list_of n Qdata.qubit

(* Run the identical monadic computation both ways. *)
let materialized ops = Gen.circuit_of_program ~n ops
let streamed ops sink = fst (Circ.run_streaming ~in_ (Gen.program_fun ops) sink)

(* ------------------------------------------------------------------ *)
(* The four sinks vs their materialized counterparts                   *)

let prop_gatecount =
  QCheck2.Test.make
    ~name:"streaming gatecount equals Gatecount.summarize (200 circuits)"
    ~count:200
    (Gen.program_gen ~n ())
    (fun ops ->
      let b = materialized ops in
      let s = streamed ops (Sink.gatecount ()) in
      let reference = Gatecount.summarize b in
      s = reference
      && Fmt.str "%a" Gatecount.pp_summary s
         = Fmt.str "%a" Gatecount.pp_summary reference)

let prop_depth =
  QCheck2.Test.make
    ~name:"streaming depth equals Depth.depth (200 circuits)" ~count:200
    (Gen.program_gen ~n ())
    (fun ops ->
      let b = materialized ops in
      streamed ops (Sink.depth ()) = Depth.depth b)

let prop_print =
  QCheck2.Test.make
    ~name:"streaming print is byte-identical to Printer (200 circuits)"
    ~count:200
    (Gen.program_gen ~n ())
    (fun ops ->
      let b = materialized ops in
      let buf = Buffer.create 4096 in
      let ppf = Format.formatter_of_buffer buf in
      let () = streamed ops (Sink.printer ppf) in
      Buffer.contents buf = Printer.to_string b)

let prop_simulate =
  QCheck2.Test.make
    ~name:
      "streaming statevector simulation is bit-for-bit materialized (200 \
       circuits)"
    ~count:200
    QCheck2.Gen.(pair (Gen.program_gen ~n ()) (list_repeat n bool))
    (fun (ops, inputs) ->
      let b = materialized ops in
      let reference =
        Backend.Statevector.observe
          (Backend.Statevector.run_circuit ~seed:7 b inputs)
      in
      (* polymorphic [=], not up-to-phase: the streaming run must apply
         the exact same floating-point kernel sequence *)
      streamed ops (Backend.sink (module Backend.Statevector) ~seed:7 ~inputs ())
      = reference)

let prop_tee =
  QCheck2.Test.make
    ~name:"tee-ed sinks see the same stream as solo runs" ~count:50
    (Gen.program_gen ~n ())
    (fun ops ->
      let counts, depth = streamed ops (Sink.tee (Sink.gatecount ()) (Sink.depth ())) in
      counts = streamed ops (Sink.gatecount ())
      && depth = streamed ops (Sink.depth ()))

(* ------------------------------------------------------------------ *)
(* Event-order regression: boxed, controlled subcircuits               *)

(* Two nested boxes, the outer one called under [with_controls] and
   once inverted via the sandwich below: the streamed gate sequence and
   collected namespace must be exactly what [Circ.generate] buffers. *)
let inner q =
  let* q = hadamard q in
  let* q = gate_T q in
  return q

let outer q =
  let* q = box "inner" ~in_:Qdata.qubit ~out:Qdata.qubit inner q in
  let* q = box "inner" ~in_:Qdata.qubit ~out:Qdata.qubit inner q in
  qnot q

let boxed_prog (a, b2) =
  let call = box "outer" ~in_:Qdata.qubit ~out:Qdata.qubit outer in
  let* a = call a in
  let* a = with_controls [ ctl b2 ] (call a) in
  let* () = cnot ~control:a ~target:b2 in
  return (a, b2)

let test_boxed_stream_order () =
  let shape = Qdata.pair Qdata.qubit Qdata.qubit in
  let b, _ = Circ.generate ~in_:shape boxed_prog in
  let (gates, (subs, sub_order)), _ =
    Circ.run_streaming ~in_:shape boxed_prog
      (Sink.tee (Sink.gates ()) (Sink.subroutines ()))
  in
  check "streamed gates equal the buffered main circuit" true
    (gates = Array.to_list b.Circuit.main.Circuit.gates);
  check "definition order matches (innermost first)" true
    (sub_order = b.Circuit.sub_order);
  check "collected namespace equals the buffered one" true
    (Circuit.Namespace.equal ( = ) subs b.Circuit.subs);
  check "the regression is non-trivial: two defs, nested" true
    (List.length sub_order = 2 && List.mem "inner" sub_order
    && List.mem "outer" sub_order)

(* ------------------------------------------------------------------ *)
(* Retain-machinery regression: with_computed in streaming mode        *)

(* The compute half must stay buffered (it is re-read to emit the
   uncompute half) even though the run does not materialize; nested
   sandwiches exercise the retain counter. *)
let sandwich_prog ql =
  let qs = Array.of_list ql in
  let* () =
    with_computed
      (let* () = cnot ~control:qs.(0) ~target:qs.(1) in
       with_computed
         (hadamard_ qs.(2))
         (fun () -> cnot ~control:qs.(2) ~target:qs.(3)))
      (fun () -> qnot_ qs.(3))
  in
  return ql

let test_with_computed_stream () =
  let b, _ = Circ.generate ~in_:in_ sandwich_prog in
  let gates, _ =
    Circ.run_streaming ~in_ sandwich_prog (Sink.gates ())
  in
  check "streamed sandwich equals the buffered gate sequence" true
    (gates = Array.to_list b.Circuit.main.Circuit.gates);
  let counts, _ =
    Circ.run_streaming ~in_ sandwich_prog (Sink.gatecount ())
  in
  check "streaming count agrees on the sandwich" true
    (counts = Gatecount.summarize b)

(* Ancilla blocks in the random generator also route through
   reverse_fun; pin that the whole generator family streams the same
   gate list it buffers. *)
let prop_stream_order =
  QCheck2.Test.make
    ~name:"streamed gate sequence equals the buffered one (200 circuits)"
    ~count:200
    (Gen.program_gen ~n ())
    (fun ops ->
      let b = materialized ops in
      streamed ops (Sink.gates ()) = Array.to_list b.Circuit.main.Circuit.gates)

(* ------------------------------------------------------------------ *)
(* Unbox + simulation on a hierarchical circuit                        *)

let test_boxed_simulation () =
  let shape = Qdata.pair Qdata.qubit Qdata.qubit in
  let b, _ = Circ.generate ~in_:shape boxed_prog in
  let inputs = [ true; false ] in
  let reference =
    Backend.Statevector.observe
      (Backend.Statevector.run_circuit ~seed:3 b inputs)
  in
  let obs, _ =
    Circ.run_streaming ~in_:shape boxed_prog
      (Backend.sink (module Backend.Statevector) ~seed:3 ~inputs ())
  in
  check "streamed boxed circuit simulates up to phase like materialized"
    true
    (Backend.equal_observation obs reference)

(* ------------------------------------------------------------------ *)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_gatecount;
    QCheck_alcotest.to_alcotest prop_depth;
    QCheck_alcotest.to_alcotest prop_print;
    QCheck_alcotest.to_alcotest prop_simulate;
    QCheck_alcotest.to_alcotest prop_tee;
    QCheck_alcotest.to_alcotest prop_stream_order;
    Alcotest.test_case "boxed+controlled stream order" `Quick
      test_boxed_stream_order;
    Alcotest.test_case "with_computed streams its buffered sequence" `Quick
      test_with_computed_stream;
    Alcotest.test_case "boxed circuit: streaming simulation" `Quick
      test_boxed_simulation;
  ]
