(* Tests for the streaming optimizer: hand-built cascades through the
   windowed sink, retirement-boundary soundness regressions, a
   200-circuit differential corpus (streamed-optimized output must mean
   the same thing as the input, statevector up to global phase or
   bit-for-bit classically), streamed-vs-materialized reduction parity,
   window-monotonicity and depth properties on the same corpus, golden
   agreement with [Passes.optimize] on the paper's BWT and TF circuits,
   and the per-level pass statistics satellite.

   The corpus is deterministic: circuit [i] is [Gen.sample ~seed:i] of
   the same generators the QCheck properties use, so a failure names the
   seed and reproduces exactly. *)

open Quipper
module Gen = Quipper_testgen.Gen
open Circ
module Passes = Quipper_opt.Passes
module Equiv = Quipper_opt.Equiv
module Stream_opt = Quipper_opt.Stream_opt

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let gen_shape n f = fst (Circ.generate ~in_:(Qdata.list_of n Qdata.qubit) f)
let logical b = (Gatecount.summarize b).Gatecount.total_logical

let corpus_seeds = List.init 200 (fun i -> i)

let corpus_circuit seed =
  Gen.circuit_of_program ~n:4 (Gen.sample ~seed (Gen.program_gen ~n:4 ()))

(* ------------------------------------------------------------------ *)
(* Hand-built cascades through the window                               *)

let test_stream_cancel_pair () =
  let b =
    gen_shape 1 (function
      | [ q ] ->
          let* q = hadamard q in
          let* q = hadamard q in
          return [ q ]
      | _ -> assert false)
  in
  let st = Stream_opt.stats_create () in
  let b' = Stream_opt.optimize_b ~stats:st b in
  checki "H pair gone" 0 (logical b');
  checki "one cancellation counted" 1 st.Stream_opt.cancelled

let test_stream_const_control () =
  (* an ancilla initialised |0> controls a NOT: the control is provably
     unsatisfied, so the gate is deleted at arrival *)
  let b =
    gen_shape 1 (function
      | [ q ] ->
          let* () =
            with_ancilla (fun anc ->
                qnot_ q |> controlled [ ctl anc ])
          in
          return [ q ]
      | _ -> assert false)
  in
  let st = Stream_opt.stats_create () in
  let b' = Stream_opt.optimize_b ~stats:st b in
  check "controlled NOT deleted" true (st.Stream_opt.const_deleted >= 1);
  checki "only the ancilla init/term remain at most" 0
    (Gatecount.find_kind (Gatecount.aggregate b') "not")

let test_stream_flip_sandwich () =
  (* X (T-as-control) X collapses to a negated control *)
  let b =
    gen_shape 2 (function
      | [ a; b ] ->
          let* a = qnot a in
          let* b' = gate_T b |> controlled [ ctl a ] in
          let* a = qnot a in
          return [ a; b' ]
      | _ -> assert false)
  in
  let st = Stream_opt.stats_create () in
  let b' = Stream_opt.optimize_b ~stats:st b in
  checki "both X's absorbed" 1 (logical b');
  checki "one sandwich counted" 1 st.Stream_opt.flipped;
  check "still equivalent" true (Equiv.equivalent (Equiv.check b b'))

(* ------------------------------------------------------------------ *)
(* Retirement boundaries: [Gate.commutes] soundness regressions         *)

(* T and T* sandwich a CNOT *controlled* on the same wire: the control
   is diagonal, so with the window wide enough the pair cancels across
   it — the same case [test_opt] pins for the materialized walk. *)
let diagonal_sandwich () =
  gen_shape 2 (function
    | [ a; b ] ->
        let* a = gate_T a in
        let* () = cnot ~control:a ~target:b in
        let* () = gate_T_inv a in
        return [ a; b ]
    | _ -> assert false)

let test_retire_cancel_across_control () =
  let b = diagonal_sandwich () in
  let b' = Stream_opt.optimize_b b in
  checki "T pair cancelled across the diagonal control" 1 (logical b')

let test_retire_blocked_across_target () =
  (* H (CNOT targeting the wire) H must NOT cancel: the pair does not
     commute past the target *)
  let b =
    gen_shape 2 (function
      | [ a; b ] ->
          let* b = hadamard b in
          let* () = cnot ~control:a ~target:b in
          let* b = hadamard b in
          return [ a; b ]
      | _ -> assert false)
  in
  let b' = Stream_opt.optimize_b b in
  checki "nothing removed" 3 (logical b')

let test_retired_partner_is_out_of_reach () =
  (* the same diagonal sandwich, but a window of 1 retires the first T
     before its partner arrives: the walk must stop at the retired
     entry (never rewrite downstream history), leaving all three gates —
     and the output must still mean the same thing *)
  let b = diagonal_sandwich () in
  let b' = Stream_opt.optimize_b ~rounds:1 ~window:1 b in
  checki "partner retired, nothing cancelled" 3 (logical b');
  check "still equivalent" true (Equiv.equivalent (Equiv.check b b'))

(* ------------------------------------------------------------------ *)
(* Box bodies                                                           *)

let test_box_body_optimized () =
  let inner q =
    let* q = hadamard q in
    let* q = hadamard q in
    gate_T q
  in
  let prog (a, b2) =
    let call = box "inner" ~in_:Qdata.qubit ~out:Qdata.qubit inner in
    let* a = call a in
    let* a = call a in
    let* () = cnot ~control:a ~target:b2 in
    return (a, b2)
  in
  let b, _ = Circ.generate ~in_:(Qdata.pair Qdata.qubit Qdata.qubit) prog in
  let st = Stream_opt.stats_create () in
  let b' = Stream_opt.optimize_b ~rounds:1 ~stats:st b in
  checki "body rewritten once for two call sites" 1 st.Stream_opt.boxes_optimized;
  let sub = Circuit.find_sub b' "inner" in
  checki "H pair removed inside the definition" 1
    (Array.length sub.Circuit.circ.Circuit.gates);
  checki "call sites intact" 2
    (Array.fold_left
       (fun acc g -> match g with Gate.Subroutine _ -> acc + 1 | _ -> acc)
       0 b'.Circuit.main.Circuit.gates);
  check "boxed circuit still equivalent" true
    (Equiv.equivalent (Equiv.check b b'))

(* ------------------------------------------------------------------ *)
(* [Sink.circuit] / [Sink.drive]: the replay loop closes                *)

let test_drive_circuit_roundtrip () =
  List.iter
    (fun seed ->
      let b = corpus_circuit seed in
      let b' = Sink.drive b (Sink.circuit ()) in
      checks
        (Fmt.str "drive/collect identity (seed %d)" seed)
        (Printer.to_string b) (Printer.to_string b'))
    [ 0; 1; 17; 96; 199 ]

(* ------------------------------------------------------------------ *)
(* The 200-circuit differential corpus                                  *)

let test_corpus_statevector () =
  List.iter
    (fun seed ->
      let b = corpus_circuit seed in
      let b' = Stream_opt.optimize_b b in
      Circuit.validate_b b';
      match Equiv.check b b' with
      | Equiv.Equivalent _ -> ()
      | v ->
          Alcotest.failf "seed %d: streamed-optimized not equivalent: %a" seed
            Equiv.pp v)
    corpus_seeds

let test_corpus_classical () =
  List.iter
    (fun seed ->
      let ops = Gen.sample ~seed (Gen.classical_program_gen ~n:5 ()) in
      let b = Gen.circuit_of_program ~n:5 ops in
      let b' = Stream_opt.optimize_b b in
      Circuit.validate_b b';
      match Equiv.check b b' with
      | Equiv.Equivalent { mode = Equiv.Classical; _ } -> ()
      | v ->
          Alcotest.failf "seed %d: not bit-for-bit classical: %a" seed Equiv.pp v)
    corpus_seeds

(* With the window covering the whole circuit, the streamed greedy and
   the materialized fixpoint agree gate-for-gate on (at least) 199 of
   the 200 corpus circuits; the allowed residue is the greedy
   commitment-order artifact (seed 96 keeps one extra gate), never a
   streamed result *better* than the fixpoint or worse by more than
   one gate. *)
let test_corpus_passes_parity () =
  let mismatches = ref 0 in
  List.iter
    (fun seed ->
      let b = corpus_circuit seed in
      let mat = logical (fst (Passes.optimize b)) in
      let st = logical (Stream_opt.optimize_b ~window:4096 b) in
      if st <> mat then begin
        incr mismatches;
        if st < mat || st > mat + 1 then
          Alcotest.failf "seed %d: streamed %d vs materialized %d" seed st mat
      end)
    corpus_seeds;
  check "at most 2 greedy off-by-one residues in 200" true (!mismatches <= 2)

let test_corpus_never_deepens () =
  List.iter
    (fun seed ->
      let b = corpus_circuit seed in
      let b' = Stream_opt.optimize_b b in
      if Depth.depth b' > Depth.depth b then
        Alcotest.failf "seed %d: depth %d -> %d" seed (Depth.depth b)
          (Depth.depth b'))
    corpus_seeds

let test_corpus_window_monotone () =
  List.iter
    (fun seed ->
      let b = corpus_circuit seed in
      let red w = logical b - logical (Stream_opt.optimize_b ~window:w b) in
      let r8 = red 8 and r32 = red 32 and r256 = red 256 in
      if not (r8 <= r32 && r32 <= r256) then
        Alcotest.failf "seed %d: reductions not monotone in window: %d %d %d"
          seed r8 r32 r256)
    corpus_seeds

(* ------------------------------------------------------------------ *)
(* Print -> parse of streamed-optimized output                          *)

let test_streamed_output_roundtrips () =
  List.iter
    (fun seed ->
      let b' = Stream_opt.optimize_b (corpus_circuit seed) in
      let s = Printer.to_string b' in
      let b'' = Parser.parse s in
      Circuit.validate_b b'';
      checks (Fmt.str "reprint fixpoint (seed %d)" seed) s (Printer.to_string b''))
    (List.init 50 (fun i -> 4 * i))

let test_streamed_printer_matches_optimize_b () =
  (* composing the transformer into [Sink.printer] must emit exactly the
     text of the collected-and-printed optimized circuit: surviving
     gates are never reordered *)
  List.iter
    (fun seed ->
      let b = corpus_circuit seed in
      let buf = Buffer.create 256 in
      let ppf = Format.formatter_of_buffer buf in
      let () = Sink.drive b (Stream_opt.sink (Sink.printer ppf)) in
      Format.pp_print_flush ppf ();
      checks
        (Fmt.str "streamed text (seed %d)" seed)
        (Printer.to_string (Stream_opt.optimize_b b))
        (Buffer.contents buf))
    [ 0; 7; 42; 96; 123 ]

(* ------------------------------------------------------------------ *)
(* Golden agreement with the materialized optimizer on the paper's      *)
(* workloads (the CLI diffs the same pairs in CI)                       *)

let test_golden_bwt () =
  let p = { Algo_bwt.n = 3; s = 2; dt = Algo_bwt.default_params.Algo_bwt.dt } in
  let mat =
    fst (Passes.optimize (Algo_bwt.generate ~p ~which:`Orthodox ()))
  in
  let (summary, depth), _ =
    Circ.run_streaming_unit
      (Algo_bwt.whole ~p (Algo_bwt.orthodox_oracle p))
      (Stream_opt.sink (Sink.tee (Sink.gatecount ()) (Sink.depth ())))
  in
  checks "bwt gatecount summaries byte-identical"
    (Fmt.str "%a" Gatecount.pp_summary (Gatecount.summarize mat))
    (Fmt.str "%a" Gatecount.pp_summary summary);
  checki "bwt depth identical" (Depth.depth mat) depth

let test_golden_tf () =
  let p = { Algo_tf.Oracle.l = 3; n = 2; r = 2 } in
  let b = Algo_tf.Qwtfp.generate_pow17 ~p () in
  let mat = fst (Passes.optimize b) in
  let summary, depth =
    Sink.drive b (Stream_opt.sink (Sink.tee (Sink.gatecount ()) (Sink.depth ())))
  in
  checks "tf gatecount summaries byte-identical"
    (Fmt.str "%a" Gatecount.pp_summary (Gatecount.summarize mat))
    (Fmt.str "%a" Gatecount.pp_summary summary);
  checki "tf depth identical" (Depth.depth mat) depth

(* ------------------------------------------------------------------ *)
(* Per-level pass statistics (the wall-time conflation fix)             *)

let test_passes_per_level_stats () =
  (* an H pair inside a box called twice: the headline (hierarchy-
     expanded) cancel delta counts both call sites, the per-level
     breakdown charges the box's flat body once — which is what its
     wall time paid for *)
  let inner q =
    let* q = hadamard q in
    let* q = hadamard q in
    gate_T q
  in
  let prog (a, b2) =
    let call = box "inner" ~in_:Qdata.qubit ~out:Qdata.qubit inner in
    let* a = call a in
    let* a = call a in
    let* () = cnot ~control:a ~target:b2 in
    return (a, b2)
  in
  let b, _ = Circ.generate ~in_:(Qdata.pair Qdata.qubit Qdata.qubit) prog in
  let _, stats = Passes.optimize b in
  let cancel =
    List.find
      (fun (s : Passes.stat) -> s.Passes.spass = "cancel" && s.Passes.round = 1)
      stats
  in
  checki "headline delta is hierarchy-expanded (2 calls x 2 gates)" 4
    (cancel.Passes.gates_before - cancel.Passes.gates_after);
  let level name =
    List.find
      (fun (l : Passes.level) -> l.Passes.lname = name)
      cancel.Passes.levels
  in
  let main = level "main" and box_l = level "inner" in
  checki "main body flat delta" 0
    (main.Passes.lgates_before - main.Passes.lgates_after);
  checki "box body flat delta counted once" 2
    (box_l.Passes.lgates_before - box_l.Passes.lgates_after);
  let level_sum =
    List.fold_left
      (fun acc (l : Passes.level) -> acc +. l.Passes.lseconds)
      0.0 cancel.Passes.levels
  in
  check "pass wall time is the sum of its levels" true
    (Float.abs (cancel.Passes.seconds -. level_sum) < 1e-9)

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "stream: H pair cancels" `Quick test_stream_cancel_pair;
    Alcotest.test_case "stream: constant control deletes gate" `Quick
      test_stream_const_control;
    Alcotest.test_case "stream: X sandwich flips controls" `Quick
      test_stream_flip_sandwich;
    Alcotest.test_case "retirement: cancel across diagonal control" `Quick
      test_retire_cancel_across_control;
    Alcotest.test_case "retirement: blocked across CNOT target" `Quick
      test_retire_blocked_across_target;
    Alcotest.test_case "retirement: retired partner out of reach" `Quick
      test_retired_partner_is_out_of_reach;
    Alcotest.test_case "box body optimized once, calls intact" `Quick
      test_box_body_optimized;
    Alcotest.test_case "drive/collect replay identity" `Quick
      test_drive_circuit_roundtrip;
    Alcotest.test_case "corpus: statevector equivalent (200)" `Quick
      test_corpus_statevector;
    Alcotest.test_case "corpus: classical bit-for-bit (200)" `Quick
      test_corpus_classical;
    Alcotest.test_case "corpus: parity with Passes at full window" `Quick
      test_corpus_passes_parity;
    Alcotest.test_case "corpus: never deepens" `Quick test_corpus_never_deepens;
    Alcotest.test_case "corpus: reduction monotone in window" `Quick
      test_corpus_window_monotone;
    Alcotest.test_case "streamed output print->parse roundtrip" `Quick
      test_streamed_output_roundtrips;
    Alcotest.test_case "streamed printer = optimize_b printed" `Quick
      test_streamed_printer_matches_optimize_b;
    Alcotest.test_case "golden: bwt matches materialized -O" `Quick
      test_golden_bwt;
    Alcotest.test_case "golden: tf matches materialized -O" `Quick test_golden_tf;
    Alcotest.test_case "passes: per-level wall-time stats" `Quick
      test_passes_per_level_stats;
  ]
