(* Parameter sweeps: the skeleton hash ([Circuit.hash_skeleton]), the
   fuser's re-specializable templates ([Fuse.compile_template] /
   [run_template]), the streaming optimizer's skeleton memo and the
   serve layer's [submit_sweep].

   The load-bearing property everywhere is bit-identity to the naive
   path: a template served at angle vector v must equal running the
   angle-substituted circuit from scratch, and every sweep point must
   equal submitting the equivalent independent request — whatever the
   backend, the cache warmth or the domain count. *)

open Quipper
module Gen = Quipper_testgen.Gen
module Fuse = Quipper_sim.Fuse
module Kernel = Quipper_sim.Kernel
module Stream_opt = Quipper_opt.Stream_opt
module Serve = Quipper_serve

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* A random rotation-bearing program plus a pool of angles to draw
   substitution vectors from (indexed deterministically, so the
   generator stays bind-free and shrinkable). *)
let rot_case_gen =
  QCheck2.Gen.(
    pair
      (Gen.rot_program_gen ~max_ops:10 ~n:3 ())
      (array_repeat 24 (float_range (-2.0) 2.0)))

let vector_of pool k j = Array.init k (fun i -> pool.(((j * 7) + i) mod 24))

(* ------------------------------------------------------------------ *)
(* hash_skeleton: angle-blind, structure-sensitive                     *)

let prop_skeleton_invariant =
  QCheck2.Test.make
    ~name:"hash_skeleton: invariant under angle substitution, hash is not"
    ~count:80 rot_case_gen (fun (ops, pool) ->
      let b = Gen.circuit_of_program ~n:3 ops in
      let k = Circuit.num_angles b in
      let v = vector_of pool k 1 in
      let b' = Circuit.subst_angles b v in
      Circuit.hash_skeleton b' = Circuit.hash_skeleton b
      && Array.length (Circuit.angles b) = k
      && Circuit.angles b' = v
      && (k = 0 || Circuit.angles b = v || Circuit.hash b' <> Circuit.hash b)
      && Circuit.hash (Circuit.subst_angles b (Circuit.angles b)) = Circuit.hash b)

let flat_rot ?(controls = []) name angle : Circuit.t =
  let shape = [ { Wire.wire = 0; ty = Wire.Q }; { Wire.wire = 1; ty = Wire.Q } ] in
  {
    Circuit.inputs = shape;
    gates = [| Gate.Rot { name; angle; inv = false; targets = [ 0 ]; controls } |];
    outputs = shape;
  }

let test_skeleton_structure_sensitive () =
  let skel = Circuit.hash_skeleton_t in
  check "same structure, different angle: equal skeletons" true
    (skel (flat_rot "Rz" 0.25) = skel (flat_rot "Rz" 0.9));
  check "full hash still sees the angle" true
    (Circuit.hash_t (flat_rot "Rz" 0.25) <> Circuit.hash_t (flat_rot "Rz" 0.9));
  check "different rotation name: different skeletons" true
    (skel (flat_rot "Rz" 0.25) <> skel (flat_rot "Rx" 0.25));
  check "added control: different skeletons" true
    (skel (flat_rot "Rz" 0.25)
    <> skel (flat_rot ~controls:[ Gate.pos_control 1 ] "Rz" 0.25));
  check "control polarity: different skeletons" true
    (skel (flat_rot ~controls:[ Gate.pos_control 1 ] "Rz" 0.25)
    <> skel (flat_rot ~controls:[ Gate.neg_control 1 ] "Rz" 0.25))

let boxed_circuit ops : Circuit.b =
  let shape = Qdata.list_of 2 Qdata.qubit in
  let b, _ =
    Circ.generate ~in_:shape (fun ql ->
        Circ.box "body" ~in_:shape ~out:shape (Gen.program_fun ops) ql)
  in
  b

let test_skeleton_resolves_boxes () =
  (* the angle lives inside a boxed body: the skeleton must look through
     the subroutine call and still ignore it — but see a changed axis *)
  let rz a = boxed_circuit [ Gen.H 0; Gen.Rz (0, a); Gen.CNot (0, 1) ] in
  let rx a = boxed_circuit [ Gen.H 0; Gen.Rx (0, a); Gen.CNot (0, 1) ] in
  check "boxed angle ignored" true
    (Circuit.hash_skeleton (rz 0.3) = Circuit.hash_skeleton (rz 1.1));
  check "boxed angle still hashes" true
    (Circuit.hash (rz 0.3) <> Circuit.hash (rz 1.1));
  check "boxed axis seen" true
    (Circuit.hash_skeleton (rz 0.3) <> Circuit.hash_skeleton (rx 0.3))

let test_skeleton_of_angle_free_circuit () =
  let b = Gen.circuit_of_program ~n:2 [ Gen.H 0; Gen.CNot (0, 1); Gen.X 1 ] in
  checki "no angle sites" 0 (Circuit.num_angles b);
  check "skeleton = hash when no angles" true
    (Circuit.hash_skeleton b = Circuit.hash b)

let test_subst_arity () =
  let b = Gen.circuit_of_program ~n:2 [ Gen.Rz (0, 0.5) ] in
  check "subst_angles rejects wrong arity" true
    (match Circuit.subst_angles b [||] with _ -> false | exception _ -> true)

(* ------------------------------------------------------------------ *)
(* Fuse templates: compile once, re-specialize per angle vector        *)

let amps_equal sa sb = Fuse.amplitudes sa = Fuse.amplitudes sb

let prop_template_differential =
  QCheck2.Test.make
    ~name:"fuse template: run_template v = run_circuit (subst_angles b v)"
    ~count:40 rot_case_gen (fun (ops, pool) ->
      let b = Gen.circuit_of_program ~n:3 ops in
      let inputs = [ false; true; false ] in
      let tpl = Fuse.compile_template b inputs in
      let k = Circuit.num_angles b in
      List.for_all
        (fun j ->
          let v = if j = 0 then Circuit.angles b else vector_of pool k j in
          amps_equal
            (Fuse.run_template ~seed:5 tpl v)
            (Fuse.run_circuit ~seed:5 (Circuit.subst_angles b v) inputs))
        [ 0; 1; 2 ])

let test_template_boxed_replay () =
  (* one body, two call sites: the template's replay plumbing must keep
     the sites straight across repeated subroutine calls *)
  let shape = Qdata.list_of 2 Qdata.qubit in
  let body = Gen.program_fun [ Gen.H 0; Gen.Rz (0, 0.4); Gen.Rx (1, -0.2) ] in
  let b, _ =
    Circ.generate ~in_:shape (fun ql ->
        let open Circ in
        let* ql = box "body" ~in_:shape ~out:shape body ql in
        box "body" ~in_:shape ~out:shape body ql)
  in
  let inputs = [ true; false ] in
  let tpl = Fuse.compile_template b inputs in
  let k = Circuit.num_angles b in
  check "boxed body contributes angle sites" true (k > 0);
  List.iter
    (fun v ->
      check "boxed template matches subst+rerun" true
        (amps_equal
           (Fuse.run_template ~seed:11 tpl v)
           (Fuse.run_circuit ~seed:11 (Circuit.subst_angles b v) inputs)))
    [ Circuit.angles b; Array.make k 0.77; Array.init k (fun i -> 0.1 *. float i) ]

(* ------------------------------------------------------------------ *)
(* Stream_opt: the skeleton memo replays box-body rewrites             *)

let test_memo_replays_insensitive_body () =
  let b1 = boxed_circuit [ Gen.H 0; Gen.Rz (0, 0.3); Gen.CNot (0, 1) ] in
  let k = Circuit.num_angles b1 in
  let b2 = Circuit.subst_angles b1 (Array.make k 0.9) in
  let m = Stream_opt.memo () in
  let st = Stream_opt.stats_create () in
  let o1 = Stream_opt.optimize_b ~stats:st ~memo:m b1 in
  let o2 = Stream_opt.optimize_b ~stats:st ~memo:m b2 in
  check "first circuit unchanged by the memo" true
    (Circuit.hash o1 = Circuit.hash (Stream_opt.optimize_b b1));
  check "replayed body equals a fresh optimization" true
    (Circuit.hash o2 = Circuit.hash (Stream_opt.optimize_b b2));
  check "second body was replayed, not re-optimized" true
    (st.Stream_opt.box_replayed >= 1)

let test_memo_angle_sensitive_fallback () =
  (* two same-axis rotations fuse — an angle-arithmetic rewrite, so the
     memo must refuse to replay it and re-optimize at the new angles *)
  let b1 = boxed_circuit [ Gen.Rz (0, 0.3); Gen.Rz (0, 0.4); Gen.CNot (0, 1) ] in
  let k = Circuit.num_angles b1 in
  let b2 = Circuit.subst_angles b1 (Array.init k (fun i -> 0.2 +. float i)) in
  let m = Stream_opt.memo () in
  let st = Stream_opt.stats_create () in
  let _ = Stream_opt.optimize_b ~stats:st ~memo:m b1 in
  let o2 = Stream_opt.optimize_b ~stats:st ~memo:m b2 in
  check "sensitive body re-optimized correctly" true
    (Circuit.hash o2 = Circuit.hash (Stream_opt.optimize_b b2));
  (* the raw body is re-optimized per circuit (downstream window stages
     may replay the post-fusion body — that one IS angle-insensitive) *)
  check "sensitive body hit the optimizer both times" true
    (st.Stream_opt.fused >= 2)

let prop_memo_differential =
  QCheck2.Test.make
    ~name:"stream_opt: shared skeleton memo never changes the output"
    ~count:40 rot_case_gen (fun (ops, pool) ->
      let b1 = boxed_circuit ops in
      let k = Circuit.num_angles b1 in
      let b2 = Circuit.subst_angles b1 (vector_of pool k 2) in
      let m = Stream_opt.memo () in
      Circuit.hash (Stream_opt.optimize_b ~memo:m b1)
      = Circuit.hash (Stream_opt.optimize_b b1)
      && Circuit.hash (Stream_opt.optimize_b ~memo:m b2)
         = Circuit.hash (Stream_opt.optimize_b b2))

(* ------------------------------------------------------------------ *)
(* submit_sweep: bit-identical to the per-point requests               *)

let outcomes_of replies =
  List.map
    (function Ok r -> Ok r.Serve.outcomes | Error e -> Error e)
    replies

(* Serve the sweep and, on a fresh service (so neither path warms the
   other), the equivalent independent requests; compare every shot. *)
let sweep_matches_per_point ~choice ~domains ?optimize sw =
  let saved = !Kernel.num_domains in
  Kernel.num_domains := domains;
  let svc = Serve.create ~backend:choice ?optimize () in
  let ref_svc = Serve.create ~backend:choice ?optimize () in
  let swept = outcomes_of (Serve.submit_sweep svc sw) in
  let per_point = outcomes_of (Serve.submit_batch ref_svc (Serve.sweep_requests sw)) in
  Kernel.num_domains := saved;
  swept = per_point

let sweep_of ?(shots = 5) ?(seed = 42) b pool =
  let k = Circuit.num_angles b in
  {
    Serve.sw_circuit = b;
    sw_inputs = [ false; true; false ];
    sw_points = List.map (fun j -> vector_of pool k j) [ 0; 1; 2; 3 ];
    sw_shots = shots;
    sw_seed = seed;
  }

let prop_sweep_matches_per_point =
  QCheck2.Test.make
    ~name:"submit_sweep = submit_batch (sweep_requests) on fused/sv/auto"
    ~count:20 rot_case_gen (fun (ops, pool) ->
      let b = Gen.circuit_of_program ~n:3 ops in
      let sw = sweep_of b pool in
      List.for_all
        (fun choice -> sweep_matches_per_point ~choice ~domains:2 sw)
        [ `Fused; `Statevector; `Auto ])

let prop_sweep_clifford =
  QCheck2.Test.make
    ~name:"submit_sweep on clifford skeletons (shared tableau entry)"
    ~count:20
    QCheck2.Gen.(
      pair (Gen.clifford_program_gen ~max_ops:15 ~n:3 ())
        (array_repeat 24 (float_range (-2.0) 2.0)))
    (fun (ops, pool) ->
      (* interleave global phases: angle sites the tableau ignores *)
      let ops = Gen.GPhase 0.4 :: (ops @ [ Gen.GPhase (-0.7) ]) in
      let b = Gen.circuit_of_program ~n:3 ops in
      let sw = sweep_of b pool in
      sweep_matches_per_point ~choice:`Clifford ~domains:2 sw
      && sweep_matches_per_point ~choice:`Auto ~domains:1 sw)

let test_sweep_optimized_service () =
  let b =
    Gen.circuit_of_program ~n:3
      [ Gen.H 0; Gen.Rz (1, 0.6); Gen.CNot (0, 1); Gen.Rx (2, -0.3) ]
  in
  let pool = Array.init 24 (fun i -> 0.17 *. float (i - 12)) in
  check "optimizing service still matches its per-point path" true
    (sweep_matches_per_point ~choice:`Fused ~domains:2 ~optimize:true
       (sweep_of b pool))

let test_sweep_warm_template () =
  let b =
    Gen.circuit_of_program ~n:3
      [ Gen.H 0; Gen.Rz (0, 0.5); Gen.CNot (0, 1); Gen.Rz (2, 1.2) ]
  in
  let pool = Array.init 24 (fun i -> 0.21 *. float (i - 7)) in
  let sw = sweep_of b pool in
  let svc = Serve.create ~backend:`Fused () in
  let cold = outcomes_of (Serve.submit_sweep svc sw) in
  let warm = outcomes_of (Serve.submit_sweep svc sw) in
  check "warm sweep bit-identical to cold" true (cold = warm);
  let st = Serve.stats svc in
  checki "one template compiled" 1 st.Serve.t_misses;
  check "second sweep hit the template cache" true (st.Serve.t_hits >= 1);
  checki "every point re-specialized the kernel slots"
    (2 * List.length sw.Serve.sw_points)
    st.Serve.specialized;
  checki "sweep points never enter the request cache" 0 st.Serve.entries

let test_template_lru () =
  let pool = Array.init 24 (fun i -> 0.13 *. float (i - 5)) in
  let mk ops = sweep_of (Gen.circuit_of_program ~n:3 ops) pool in
  let sw1 = mk [ Gen.H 0; Gen.Rz (0, 0.5); Gen.CNot (0, 1) ] in
  let sw2 = mk [ Gen.Rx (1, 0.2); Gen.CNot (1, 2); Gen.Rz (2, 0.9) ] in
  let svc = Serve.create ~backend:`Fused ~template_capacity:1 () in
  let r1 = outcomes_of (Serve.submit_sweep svc sw1) in
  let _ = Serve.submit_sweep svc sw2 in
  let st = Serve.stats svc in
  check "capacity bound respected" true (st.Serve.t_entries <= 1);
  check "second skeleton evicted the first" true (st.Serve.t_evictions >= 1);
  (* the evicted skeleton recompiles and still serves identically *)
  check "re-sweep after eviction is bit-identical" true
    (outcomes_of (Serve.submit_sweep svc sw1) = r1)

let test_request_lru () =
  let mk ops =
    {
      Serve.circuit = Gen.circuit_of_program ~n:2 ops;
      inputs = [ false; true ];
      shots = 4;
      seed = 7;
    }
  in
  let reqs =
    [ mk [ Gen.H 0; Gen.CNot (0, 1) ];
      mk [ Gen.X 0; Gen.H 1 ];
      mk [ Gen.H 1; Gen.CNot (1, 0) ] ]
  in
  let svc = Serve.create ~backend:`Fused ~capacity:1 () in
  List.iter
    (fun req ->
      check "bounded service still matches naive" true
        ((Serve.submit svc req).Serve.outcomes = Serve.naive svc req))
    reqs;
  let st = Serve.stats svc in
  check "request cache stays at capacity" true (st.Serve.entries <= 1);
  check "older entries were evicted" true (st.Serve.evictions >= 2);
  check "capacity below 1 rejected" true
    (match Serve.create ~capacity:0 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_sweep_empty_and_errors () =
  let b = Gen.circuit_of_program ~n:2 [ Gen.Rz (0, 0.5) ] in
  let sw =
    {
      Serve.sw_circuit = b;
      sw_inputs = [ false; true ];
      sw_points = [ [| 0.1 |] ];
      sw_shots = 4;
      sw_seed = 7;
    }
  in
  check "empty sweep" true
    (Serve.submit_sweep (Serve.create ()) { sw with Serve.sw_points = [] } = []);
  (* a bad-arity point fails alone; its neighbours still serve *)
  let mixed = { sw with Serve.sw_points = [ [| 0.1 |]; [| 0.2; 0.3 |] ] } in
  match Serve.submit_sweep (Serve.create ~backend:`Fused ()) mixed with
  | [ Ok _; Error _ ] -> ()
  | _ -> Alcotest.fail "expected first point Ok, second Error"

let suite =
  [
    QCheck_alcotest.to_alcotest prop_skeleton_invariant;
    Alcotest.test_case "skeleton: structure and controls" `Quick
      test_skeleton_structure_sensitive;
    Alcotest.test_case "skeleton: resolves through boxes" `Quick
      test_skeleton_resolves_boxes;
    Alcotest.test_case "skeleton: equals hash when angle-free" `Quick
      test_skeleton_of_angle_free_circuit;
    Alcotest.test_case "subst_angles: arity check" `Quick test_subst_arity;
    QCheck_alcotest.to_alcotest prop_template_differential;
    Alcotest.test_case "template: boxed bodies, two call sites" `Quick
      test_template_boxed_replay;
    Alcotest.test_case "stream_opt memo: replays insensitive bodies" `Quick
      test_memo_replays_insensitive_body;
    Alcotest.test_case "stream_opt memo: angle-sensitive fallback" `Quick
      test_memo_angle_sensitive_fallback;
    QCheck_alcotest.to_alcotest prop_memo_differential;
    QCheck_alcotest.to_alcotest prop_sweep_matches_per_point;
    QCheck_alcotest.to_alcotest prop_sweep_clifford;
    Alcotest.test_case "sweep: optimizing service" `Quick
      test_sweep_optimized_service;
    Alcotest.test_case "sweep: warm template cache" `Quick
      test_sweep_warm_template;
    Alcotest.test_case "sweep: template LRU eviction" `Quick test_template_lru;
    Alcotest.test_case "serve: request LRU eviction" `Quick test_request_lru;
    Alcotest.test_case "sweep: empty and per-point errors" `Quick
      test_sweep_empty_and_errors;
  ]
