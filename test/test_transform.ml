(* Tests for the whole-circuit transformers: gate-base decomposition
   (semantics-preserving, checked against the statevector simulator) and
   peephole inverse-cancellation. *)

open Quipper
module Gen = Quipper_testgen.Gen
open Circ
module Sv = Quipper_sim.Statevector

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* semantic equality of two circuits: equal output vectors on every basis
   input (up to nothing — exact amplitudes; both are deterministic) *)
let same_semantics ?(eps = 1e-9) (a : Circuit.b) (b : Circuit.b) =
  let n = List.length a.Circuit.main.Circuit.inputs in
  (try
     List.iter2
       (fun (x : Wire.endpoint) (y : Wire.endpoint) ->
         if x.Wire.ty <> y.Wire.ty then failwith "arity mismatch")
       a.Circuit.main.Circuit.inputs b.Circuit.main.Circuit.inputs
   with _ -> failwith "arity mismatch");
  List.for_all
    (fun v ->
      let ins = List.init n (fun i -> (v lsr i) land 1 = 1) in
      let va = Sv.output_vector a ins and vb = Sv.output_vector b ins in
      Array.length va = Array.length vb
      && Array.for_all2 (fun x y -> Quipper_math.Cplx.equal ~eps x y) va vb)
    (List.init (1 lsl n) Fun.id)

let gen_shape n f = fst (Circ.generate ~in_:(Qdata.list_of n Qdata.qubit) f)

(* ------------------------------------------------------------------ *)

let test_binary_toffoli () =
  let b =
    gen_shape 3 (fun qs ->
        let qs = Array.of_list qs in
        let* () = toffoli ~c1:qs.(0) ~c2:qs.(1) ~target:qs.(2) in
        return (Array.to_list qs))
  in
  let d = Decompose.decompose_generic Decompose.Binary b in
  Circuit.validate_b d;
  check "binary decomposition preserves semantics" true (same_semantics b d);
  (* only 1-control gates remain *)
  let counts = Gatecount.aggregate d in
  check "no multi-controlled gates" true
    (Gatecount.Counts.for_all
       (fun k _ -> k.Gatecount.pos_controls + k.Gatecount.neg_controls <= 1)
       counts)

let test_binary_signed_toffoli () =
  let b =
    gen_shape 3 (fun qs ->
        let qs = Array.of_list qs in
        let* () = qnot_ qs.(2) |> controlled [ ctl qs.(0); ctl_neg qs.(1) ] in
        return (Array.to_list qs))
  in
  let d = Decompose.decompose_generic Decompose.Binary b in
  Circuit.validate_b d;
  check "signed toffoli decomposition" true (same_semantics b d)

let test_toffoli_base_multi_control () =
  let b =
    gen_shape 5 (fun qs ->
        let qs = Array.of_list qs in
        let* () =
          qnot_ qs.(4)
          |> controlled [ ctl qs.(0); ctl_neg qs.(1); ctl qs.(2); ctl qs.(3) ]
        in
        return (Array.to_list qs))
  in
  let d = Decompose.decompose_generic Decompose.Toffoli b in
  Circuit.validate_b d;
  check "4-controlled not -> toffoli base, same semantics" true (same_semantics b d);
  let counts = Gatecount.aggregate d in
  check "at most 2 controls" true
    (Gatecount.Counts.for_all
       (fun k _ -> k.Gatecount.pos_controls + k.Gatecount.neg_controls <= 2)
       counts)

let test_binary_multi_control () =
  let b =
    gen_shape 4 (fun qs ->
        let qs = Array.of_list qs in
        let* () = qnot_ qs.(3) |> controlled [ ctl qs.(0); ctl qs.(1); ctl qs.(2) ] in
        return (Array.to_list qs))
  in
  let d = Decompose.decompose_generic Decompose.Binary b in
  Circuit.validate_b d;
  check "3-controlled not -> binary" true (same_semantics b d)

let test_controlled_w_binary () =
  let b =
    gen_shape 3 (fun qs ->
        let qs = Array.of_list qs in
        let* () = gate_W qs.(0) qs.(1) |> controlled [ ctl qs.(2) ] in
        return (Array.to_list qs))
  in
  let d = Decompose.decompose_generic Decompose.Binary b in
  Circuit.validate_b d;
  check "controlled W -> binary, same semantics" true (same_semantics b d)

let test_w_binary () =
  let b =
    gen_shape 2 (fun qs ->
        let qs = Array.of_list qs in
        let* () = gate_W qs.(0) qs.(1) in
        return (Array.to_list qs))
  in
  let d = Decompose.decompose_generic Decompose.Binary b in
  check "W = CNOT; CH; CNOT" true (same_semantics b d)

let test_fredkin () =
  let b =
    gen_shape 3 (fun qs ->
        let qs = Array.of_list qs in
        let* () = swap qs.(1) qs.(2) |> controlled [ ctl qs.(0) ] in
        return (Array.to_list qs))
  in
  let d = Decompose.decompose_generic Decompose.Toffoli b in
  Circuit.validate_b d;
  check "controlled swap -> toffoli base" true (same_semantics b d);
  let d2 = Decompose.decompose_generic Decompose.Binary b in
  check "controlled swap -> binary base" true (same_semantics b d2)

let test_controlled_rotation () =
  let b =
    gen_shape 3 (fun qs ->
        let qs = Array.of_list qs in
        let* () =
          rot_expZt 0.37 qs.(2) |> controlled [ ctl qs.(0); ctl_neg qs.(1) ]
        in
        return (Array.to_list qs))
  in
  let d = Decompose.decompose_generic Decompose.Binary b in
  Circuit.validate_b d;
  check "multiply-controlled rotation" true (same_semantics b d)

let test_decompose_hierarchical () =
  (* decomposition rewrites subroutine bodies in place *)
  let b =
    fst
      (Circ.generate ~in_:(Qdata.triple Qdata.qubit Qdata.qubit Qdata.qubit)
         (fun (a, bq, c) ->
           let tof =
             box "tof" ~in_:(Qdata.triple Qdata.qubit Qdata.qubit Qdata.qubit)
               ~out:(Qdata.triple Qdata.qubit Qdata.qubit Qdata.qubit)
               (fun (a, b, c) ->
                 let* () = toffoli ~c1:a ~c2:b ~target:c in
                 return (a, b, c))
           in
           let* x = tof (a, bq, c) in
           tof x))
  in
  let d = Decompose.decompose_generic Decompose.Binary b in
  Circuit.validate_b d;
  check "hierarchy preserved" true (Circuit.Namespace.mem "tof" d.Circuit.subs);
  check "hierarchical decomposition semantics" true (same_semantics b d)

(* ------------------------------------------------------------------ *)
(* Peephole                                                            *)

let test_cancel_adjacent () =
  let b =
    gen_shape 2 (fun qs ->
        let qs = Array.of_list qs in
        let* () = hadamard_ qs.(0) in
        let* () = hadamard_ qs.(0) in
        let* () = cnot ~control:qs.(0) ~target:qs.(1) in
        let* () = cnot ~control:qs.(0) ~target:qs.(1) in
        let* _ = gate_T qs.(1) in
        let* () = gate_T_inv qs.(1) in
        return (Array.to_list qs))
  in
  let o = Transform.cancel_inverses b in
  checki "all gates cancelled" 0 (Circuit.gate_count_shallow o.Circuit.main)

let test_cancel_fixed_point () =
  (* H X X H cancels only after the inner pair goes *)
  let b =
    gen_shape 1 (fun qs ->
        let q = List.hd qs in
        let* () = hadamard_ q in
        let* () = qnot_ q in
        let* () = qnot_ q in
        let* () = hadamard_ q in
        return qs)
  in
  let o = Transform.cancel_inverses b in
  checki "nested cancellation" 0 (Circuit.gate_count_shallow o.Circuit.main)

let test_cancel_preserves_noncancelling () =
  let b =
    gen_shape 2 (fun qs ->
        let qs = Array.of_list qs in
        let* () = hadamard_ qs.(0) in
        let* () = cnot ~control:qs.(0) ~target:qs.(1) in
        let* () = hadamard_ qs.(0) in
        return (Array.to_list qs))
  in
  let o = Transform.cancel_inverses b in
  checki "nothing wrongly removed" 3 (Circuit.gate_count_shallow o.Circuit.main);
  check "semantics preserved" true (same_semantics b o)

let prop_decompose_binary_semantics =
  QCheck2.Test.make ~name:"binary decomposition preserves random-circuit semantics"
    ~count:40 (Gen.program_gen ~n:3 ())
    (fun ops ->
      let b = Gen.circuit_of_program ~n:3 ops in
      let d = Decompose.decompose_generic Decompose.Binary b in
      Circuit.validate_b d;
      same_semantics b d)

let prop_cancel_semantics =
  QCheck2.Test.make ~name:"peephole cancellation preserves semantics" ~count:40
    (Gen.program_gen ~n:3 ())
    (fun ops ->
      let b = Gen.circuit_of_program ~n:3 ops in
      let o = Transform.cancel_inverses b in
      Circuit.validate_b o;
      same_semantics b o)

let suite =
  [
    Alcotest.test_case "toffoli -> binary (V ladder)" `Quick test_binary_toffoli;
    Alcotest.test_case "signed toffoli -> binary" `Quick test_binary_signed_toffoli;
    Alcotest.test_case "4-control -> toffoli base" `Quick test_toffoli_base_multi_control;
    Alcotest.test_case "3-control -> binary base" `Quick test_binary_multi_control;
    Alcotest.test_case "controlled W -> binary" `Quick test_controlled_w_binary;
    Alcotest.test_case "W -> binary" `Quick test_w_binary;
    Alcotest.test_case "fredkin decompositions" `Quick test_fredkin;
    Alcotest.test_case "controlled rotations" `Quick test_controlled_rotation;
    Alcotest.test_case "hierarchical decomposition" `Quick test_decompose_hierarchical;
    Alcotest.test_case "peephole: adjacent inverses" `Quick test_cancel_adjacent;
    Alcotest.test_case "peephole: fixed point" `Quick test_cancel_fixed_point;
    Alcotest.test_case "peephole: soundness" `Quick test_cancel_preserves_noncancelling;
    QCheck_alcotest.to_alcotest prop_decompose_binary_semantics;
    QCheck_alcotest.to_alcotest prop_cancel_semantics;
  ]
